"""Seeded outage schedules: turning scenario knobs into a timeline.

:func:`build_schedule` expands a :class:`~repro.monitor.scenario.MonitorConfig`
into a concrete :class:`MonitorSchedule` — the full list of
:class:`Outage` records (which links are down, which ASes drop probes,
which sensors are dark, when, and for how long) plus per-tick lookups
the runner, the ground-truth scorer and the blocked-vs-failed
classifier all consult.

Every decision goes through the generic seeded-hash seam of
:class:`~repro.faults.FaultPlan`, keyed on ``(mode, target, tick)``:

* whether link ``L`` starts flapping at tick ``t`` —
  ``plan.fires(rate, "monitor-flap", L, t)``;
* how long it stays down — ``plan.dwell_ticks(...)`` on the same key;
* which links are flappable at all — ``plan.pick(...)`` over the sorted
  candidate pool.

Because each answer is a pure function of ``(seed, key)`` — never of
call order, wall clock, or process layout — the same ``(seed, config)``
yields the same schedule in a serial run, a sharded run, a worker-pool
run, and a journalled resume, bit for bit.  While a link is already
down its start-decision is simply not consulted (a down link cannot
re-fail), so each target's timeline is a deterministic chain of
independent draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.errors import MonitorError
from repro.faults.plan import FaultConfig, FaultPlan
from repro.monitor.scenario import MonitorConfig

__all__ = ["Outage", "MonitorSchedule", "monitor_plan", "build_schedule"]


def monitor_plan(config: MonitorConfig, seed: int) -> FaultPlan:
    """The one seeded plan every decision of a scenario run flows through.

    Scoped by scenario name so ``steady`` and ``flaky-core`` under the
    same seed draw from unrelated decision spaces.  The schedule builder
    and the runner's per-observation draws (diurnal thinning, probe
    noise) must use this same plan — that shared scope is what makes a
    run a pure function of ``(seed, config)``.
    """
    return FaultPlan(f"{seed}/monitor/{config.name}", FaultConfig())


@dataclass(frozen=True)
class Outage:
    """One contiguous scheduled trouble interval, ``[start, end]`` inclusive.

    Exactly one of the target fields is populated, according to
    ``mode``: ``links`` for ``link-flap`` / ``srlg-failure`` /
    ``maintenance`` (an SRLG or maintenance window takes several links
    down as one record), ``asn`` for ``as-block``, ``sensor`` for
    ``sensor-churn``.  ``announced`` marks maintenance the operator was
    warned about — expected downtime, never a false alarm.
    """

    mode: str
    start: int
    end: int
    links: Tuple[str, ...] = ()
    asn: int = 0
    sensor: str = ""
    announced: bool = False
    group: str = ""

    @property
    def duration(self) -> int:
        return self.end - self.start + 1

    def active_at(self, tick: int) -> bool:
        return self.start <= tick <= self.end


@dataclass
class MonitorSchedule:
    """The expanded timeline of one scenario run.

    ``outages`` is the complete, chronologically useful record (the
    seeded ground truth the classifier is scored against); the
    ``*_at(tick)`` lookups answer the per-tick questions the runner
    asks while replaying.
    """

    config: MonitorConfig
    seed: int
    link_candidates: Tuple[str, ...]
    flap_links: Tuple[str, ...]
    srlg_groups: Tuple[Tuple[str, ...], ...]
    blockable_asns: Tuple[int, ...]
    sensors: Tuple[str, ...]
    outages: Tuple[Outage, ...]
    _active: Dict[int, Tuple[int, ...]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        active: Dict[int, List[int]] = {}
        for index, outage in enumerate(self.outages):
            for tick in range(outage.start, outage.end + 1):
                active.setdefault(tick, []).append(index)
        self._active = {tick: tuple(ids) for tick, ids in active.items()}

    def active_outages(self, tick: int) -> Tuple[Outage, ...]:
        return tuple(self.outages[i] for i in self._active.get(tick, ()))

    def down_links_at(self, tick: int) -> FrozenSet[str]:
        """Every link scheduled down at ``tick`` (flap + SRLG + maintenance)."""
        down: set = set()
        for outage in self.active_outages(tick):
            down.update(outage.links)
        return frozenset(down)

    def blocked_asns_at(self, tick: int) -> FrozenSet[int]:
        """ASes dropping probe packets at ``tick`` (LGs still answer)."""
        return frozenset(
            outage.asn
            for outage in self.active_outages(tick)
            if outage.mode == "as-block"
        )

    def dark_sensors_at(self, tick: int) -> FrozenSet[str]:
        """Sensor addresses that are offline at ``tick``."""
        return frozenset(
            outage.sensor
            for outage in self.active_outages(tick)
            if outage.mode == "sensor-churn"
        )

    def announced_links_at(self, tick: int) -> FrozenSet[str]:
        """Links down under *announced* maintenance at ``tick``."""
        announced: set = set()
        for outage in self.active_outages(tick):
            if outage.mode == "maintenance" and outage.announced:
                announced.update(outage.links)
        return frozenset(announced)

    def counters(self) -> Dict[str, int]:
        """Schedule accounting for the monitor report."""
        by_mode: Dict[str, int] = {}
        downtime = 0
        for outage in self.outages:
            by_mode[outage.mode] = by_mode.get(outage.mode, 0) + 1
            downtime += outage.duration
        counts: Dict[str, int] = {"outages_total": len(self.outages)}
        for mode in sorted(by_mode):
            counts[f"outages_{mode}"] = by_mode[mode]
        counts["downtime_ticks"] = downtime
        return counts


def _dwell_timeline(
    plan: FaultPlan,
    config: MonitorConfig,
    rate: float,
    dwell_mean: float,
    kind: str,
    target: object,
) -> List[Tuple[int, int]]:
    """``(start, end)`` intervals for one target's fire-then-dwell chain.

    Consulted only at ticks where the target is up: once an outage
    starts, the clock jumps past its dwell (a down target cannot fail
    again), then per-tick draws resume on absolute-tick keys.
    """
    intervals: List[Tuple[int, int]] = []
    tick = 0
    while tick < config.ticks:
        if plan.fires(rate, kind, target, tick):
            dwell = plan.dwell_ticks(
                dwell_mean, config.dwell_cap, f"{kind}-dwell", target, tick
            )
            end = min(tick + dwell - 1, config.ticks - 1)
            intervals.append((tick, end))
            tick = end + 1
        else:
            tick += 1
    return intervals


def build_schedule(
    config: MonitorConfig,
    seed: int,
    link_candidates: Sequence[str],
    sensors: Sequence[str],
    dst_asns: Sequence[int],
) -> MonitorSchedule:
    """Expand ``config`` into the full seeded outage timeline.

    ``link_candidates`` is the pool of flappable links (the runner
    passes the union of baseline pair-path links, so every scheduled
    outage is guaranteed to hurt someone); ``sensors`` the churnable
    sensor addresses; ``dst_asns`` the ASes eligible for probe
    blocking (sensor-hosting ASes, excluding any protected vantage).
    """
    plan = monitor_plan(config, seed)
    candidates = tuple(sorted(set(link_candidates)))
    outages: List[Outage] = []

    # Link flapping: independent per-link fire/dwell chains.
    flap_links: Tuple[str, ...] = ()
    if config.flap_rate > 0.0 and config.flap_links > 0:
        if config.flap_links > len(candidates):
            raise MonitorError(
                f"scenario {config.name!r} wants {config.flap_links} flappable "
                f"links but only {len(candidates)} candidates exist"
            )
        flap_links = tuple(
            plan.pick(candidates, config.flap_links, "monitor-flap-links")
        )
        for link in flap_links:
            for start, end in _dwell_timeline(
                plan, config, config.flap_rate, config.flap_dwell,
                "monitor-flap", link,
            ):
                outages.append(
                    Outage("link-flap", start, end, links=(link,))
                )

    # Shared-risk link groups: disjoint groups failing as a unit.
    srlg_groups: Tuple[Tuple[str, ...], ...] = ()
    if config.srlg_rate > 0.0 and config.srlg_groups > 0:
        remaining = [link for link in candidates if link not in set(flap_links)]
        need = config.srlg_groups * config.srlg_size
        if need > len(remaining):
            raise MonitorError(
                f"scenario {config.name!r} wants {config.srlg_groups} SRLGs of "
                f"{config.srlg_size} links but only {len(remaining)} candidate "
                "links remain after flap assignment"
            )
        groups: List[Tuple[str, ...]] = []
        for group_index in range(config.srlg_groups):
            members = tuple(
                plan.pick(
                    remaining, config.srlg_size, "monitor-srlg-members",
                    group_index,
                )
            )
            remaining = [link for link in remaining if link not in set(members)]
            groups.append(tuple(sorted(members)))
        srlg_groups = tuple(groups)
        for group_index, members in enumerate(srlg_groups):
            for start, end in _dwell_timeline(
                plan, config, config.srlg_rate, config.srlg_dwell,
                "monitor-srlg", group_index,
            ):
                outages.append(
                    Outage(
                        "srlg-failure", start, end, links=members,
                        group=f"srlg-{group_index}",
                    )
                )

    # Rolling maintenance: periodic windows at a seeded phase.
    if config.maintenance_every > 0 and config.maintenance_duration > 0:
        if config.maintenance_links > len(candidates):
            raise MonitorError(
                f"scenario {config.name!r} wants {config.maintenance_links} "
                f"links per maintenance window but only {len(candidates)} "
                "candidates exist"
            )
        phase = plan.pick(
            range(config.maintenance_every), 1, "monitor-maintenance-phase"
        )[0]
        window = 0
        start = phase
        while start < config.ticks:
            links = tuple(
                sorted(
                    plan.pick(
                        candidates, config.maintenance_links,
                        "monitor-maintenance-links", window,
                    )
                )
            )
            announced = plan.fires(
                config.maintenance_announced,
                "monitor-maintenance-announced", window,
            )
            end = min(start + config.maintenance_duration - 1, config.ticks - 1)
            outages.append(
                Outage(
                    "maintenance", start, end, links=links,
                    announced=announced, group=f"mw-{window}",
                )
            )
            window += 1
            start = phase + window * config.maintenance_every

    # AS-level probe blocking: the AS drops probe packets, its LG answers.
    blockable: Tuple[int, ...] = ()
    if config.block_rate > 0.0 and config.block_ases > 0:
        pool = tuple(sorted(set(dst_asns)))
        if not pool:
            raise MonitorError(
                f"scenario {config.name!r} enables AS blocking but no "
                "blockable destination ASes were supplied"
            )
        blockable = tuple(
            plan.pick(pool, min(config.block_ases, len(pool)), "monitor-block-ases")
        )
        for asn in blockable:
            for start, end in _dwell_timeline(
                plan, config, config.block_rate, config.block_dwell,
                "monitor-block", asn,
            ):
                outages.append(Outage("as-block", start, end, asn=asn))

    # Sensor churn: vantage points going dark and returning.
    if config.churn_rate > 0.0:
        for sensor in sorted(set(sensors)):
            for start, end in _dwell_timeline(
                plan, config, config.churn_rate, config.churn_dwell,
                "monitor-churn", sensor,
            ):
                outages.append(Outage("sensor-churn", start, end, sensor=sensor))

    outages.sort(key=lambda o: (o.start, o.end, o.mode, o.links, o.asn, o.sensor))
    return MonitorSchedule(
        config=config,
        seed=seed,
        link_candidates=candidates,
        flap_links=flap_links,
        srlg_groups=srlg_groups,
        blockable_asns=blockable,
        sensors=tuple(sorted(set(sensors))),
        outages=tuple(outages),
    )
