"""Driving a monitoring scenario through the streaming engine.

The monitor is a *liveness* workload: after one real probe mesh under
the nominal state establishes each pair's baseline path, the long tail
of the run is cheap per-pair reachability checks derived from the
seeded outage schedule — a pair is up at a tick unless a link on its
baseline path is scheduled down, its destination AS is blocking
probes, or measurement noise lies about it.  Those observations stream
through the ordinary engine (serial, sharded or supervised, chosen by
:func:`~repro.stream.replay.build_engine`), which runs its episode
detection exactly as in an incident replay; the
:class:`~repro.monitor.recorder.FlightRecorder` consumes the same
observations driver-side, *before* any shard routing, so its intervals
are bit-identical under every process layout by construction.

Because liveness events never enter the diagnosis window (only failing
*paths* do), the engine's episode reports in monitor mode are
summary-only — the monitor tells you *when* and *who*, and hands the
blocked-vs-failed question to :mod:`repro.monitor.classify`; a full
differential diagnosis remains ``python -m repro stream``'s job.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.core.pathset import EPOCH_PRE, Pair, ProbePath
from repro.errors import MonitorError
from repro.experiments.journal import RunJournal
from repro.faults import DegradationReport
from repro.measurement.probing import probe_pair
from repro.monitor.classify import (
    ClassifierScore,
    DetectionStats,
    MonitorLookingGlass,
    assign_truth,
    classify_intervals,
    pair_link_map,
    score_classifier,
    score_detection,
    suffix_link_map,
)
from repro.monitor.recorder import FlightRecorder, PairQuality
from repro.monitor.scenario import MonitorConfig
from repro.monitor.schedule import MonitorSchedule, build_schedule, monitor_plan
from repro.stream.engine import EpisodeReport
from repro.stream.events import (
    ProbeEvent,
    ReachabilityEvent,
    SensorDropoutEvent,
    SensorHeartbeatEvent,
    StreamEvent,
)
from repro.stream.replay import (
    ReplayLog,
    ReplaySetup,
    build_engine,
    make_replay_setup,
    run_replay,
)
from repro.stream.router import ShardedStreamEngine, TenantConfig
from repro.stream.supervise import SupervisedStreamEngine, SupervisionConfig

__all__ = [
    "MonitorRunResult",
    "baseline_paths",
    "make_monitor_setup",
    "run_monitor",
]


@dataclass
class MonitorRunResult:
    """Everything one monitoring run produced, for reports and benchmarks."""

    config: MonitorConfig
    seed: int
    schedule: MonitorSchedule
    recorder: FlightRecorder
    reports: List[EpisodeReport]
    events_total: int
    wall_seconds: float
    pairs_monitored: int
    pairs_skipped: int
    lg_queries: int
    detection: DetectionStats
    classifier: ClassifierScore
    quality: List[PairQuality]
    engine_counters: Dict[str, int]
    ingest_counters: Dict[str, int]
    window_counters: Dict[str, int]
    detector_counters: Dict[str, int]
    stage_seconds: Dict[str, float]
    shard_stats: Optional[List[Dict[str, int]]] = None
    supervision: Optional[Dict] = None
    interrupted: bool = False
    observations_skipped: int = field(default=0)

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_total / self.wall_seconds


def make_monitor_setup(
    seed: int = 0,
    topo_seed: int = 100,
    n_tier2: int = 6,
    n_stub: int = 40,
    tier2_style: str = "hubspoke",
    n_sensors: int = 6,
) -> ReplaySetup:
    """A monitoring deployment: the stream deployment plus LGs everywhere.

    Looking Glasses are non-negotiable here — without them the
    blocked-vs-failed classifier has no control-plane oracle to ask.
    """
    return make_replay_setup(
        seed=seed,
        topo_seed=topo_seed,
        n_tier2=n_tier2,
        n_stub=n_stub,
        tier2_style=tier2_style,
        n_sensors=n_sensors,
        blocked_fraction=0.0,
        algorithms=("nd-lg",),
    )


def baseline_paths(setup: ReplaySetup) -> Dict[Pair, ProbePath]:
    """One real probe mesh under the nominal state: the baseline truth.

    Pairs whose baseline probe does not reach (partitioned vantage,
    unlucky deployment) are excluded from monitoring — there is no
    healthy path to watch degrade.
    """
    session = setup.session
    paths: Dict[Pair, ProbePath] = {}
    for src in session.sensors:
        for dst in session.sensors:
            if src.sensor_id == dst.sensor_id:
                continue
            path = probe_pair(
                session.sim, src, dst, session.base_state, epoch=EPOCH_PRE
            )
            if path is not None and path.reached:
                paths[path.pair] = path
    if not paths:
        raise MonitorError(
            "no monitorable pairs: every baseline probe failed to reach"
        )
    return paths


def _build_monitor_log(
    setup: ReplaySetup,
    config: MonitorConfig,
    seed: int,
    schedule: MonitorSchedule,
    paths: Dict[Pair, ProbePath],
    links: Dict[Pair, FrozenSet[str]],
    recorder: FlightRecorder,
) -> Tuple[ReplayLog, int]:
    """Expand the schedule into the event log, feeding the recorder.

    One pass over the logical clock: churn edges first (returning
    heartbeats, then new dropouts), a baseline ``pre`` mesh on its
    cadence, then the tick's liveness checks in sorted pair order.
    Every stochastic choice (diurnal thinning, probe noise) is a seeded
    per-``(pair, tick)`` decision of the scenario plan, so the log —
    and therefore everything downstream — is a pure function of
    ``(seed, config)``.  Returns the log and the number of liveness
    checks thinned away by the diurnal cycle.
    """
    plan = monitor_plan(config, seed)
    asn_of = setup.session.sim.mapper.asn_of
    blocked_cache: Dict[str, int] = {
        address: asn_of(address)
        for address in {pair[1] for pair in paths}
    }
    events: List[StreamEvent] = []
    seq = 0

    def emit(cls, tick: int, **kwargs) -> None:
        nonlocal seq
        events.append(cls(tick=tick, seq=seq, **kwargs))
        seq += 1

    sensors = sorted(sensor.address for sensor in setup.session.sensors)
    pairs = sorted(paths)
    dark_before: FrozenSet[str] = frozenset()
    thinned = 0
    diurnal = config.diurnal_period > 0
    noisy = config.noise_rate > 0.0

    for tick in range(config.ticks):
        if tick == 0:
            for address in sensors:
                emit(SensorHeartbeatEvent, tick, address=address)
        dark = schedule.dark_sensors_at(tick)
        for address in sorted(dark_before - dark):
            emit(SensorHeartbeatEvent, tick, address=address)
        for address in sorted(dark - dark_before):
            emit(SensorDropoutEvent, tick, address=address)
            recorder.forget(tick, address)
        dark_before = dark

        if config.baseline_every and tick % config.baseline_every == 0:
            refreshed = 0
            for pair in pairs:
                if pair[0] in dark or pair[1] in dark:
                    continue
                emit(ProbeEvent, tick, path=paths[pair])
                refreshed += 1
            recorder.note_baseline(tick, refreshed)

        down = schedule.down_links_at(tick)
        blocked = schedule.blocked_asns_at(tick)
        for pair in pairs:
            src, dst = pair
            if src in dark or dst in dark:
                continue
            if diurnal and not plan.fires(
                config.intensity(tick), "monitor-probe", src, dst, tick
            ):
                thinned += 1
                continue
            reached = not (links[pair] & down)
            if reached and blocked_cache[dst] in blocked:
                reached = False
            if reached and noisy and plan.fires(
                config.noise_rate, "monitor-noise", src, dst, tick
            ):
                reached = False
            emit(ReachabilityEvent, tick, src=src, dst=dst, reached=reached)
            recorder.observe(tick, pair, reached)
        recorder.advance(tick)

    log = ReplayLog(
        events=events, episodes=[], last_tick=config.ticks - 1
    )
    return log, thinned


def run_monitor(
    setup: ReplaySetup,
    config: MonitorConfig,
    seed: int = 0,
    *,
    policy: str = "quarantine",
    window_width: int = 4,
    window_capacity: int = 0,
    max_pending: int = 8,
    overflow_limit: int = 32,
    workers: int = 0,
    shards: int = 1,
    tenants: Optional[Tuple[TenantConfig, ...]] = None,
    tenant_of=None,
    chaos_rate: float = 0.0,
    supervise: bool = False,
    supervision: Optional[SupervisionConfig] = None,
    checkpoint_path: Optional[str] = None,
    dlq_path: Optional[str] = None,
    journal: Optional[RunJournal] = None,
    cached_reports: Optional[Mapping[int, EpisodeReport]] = None,
    retention: int = 256,
) -> MonitorRunResult:
    """Run one scenario end to end: schedule → stream → record → score.

    The engine knobs mirror ``run_stream_replay`` (sharding, tenancy,
    chaos, supervision, journalled resume all work identically); the
    hysteresis thresholds come from the scenario config so the engine's
    episode detector and the flight recorder confirm and clear on the
    same streaks.
    """
    if setup.lg_service is None:
        raise MonitorError(
            "monitoring needs a Looking Glass service (use "
            "make_monitor_setup); the blocked-vs-failed classifier has "
            "no oracle without one"
        )
    paths = baseline_paths(setup)
    links = pair_link_map(paths)
    asn_of = setup.session.sim.mapper.asn_of
    candidates = sorted(set().union(*links.values()))
    sensors = [sensor.address for sensor in setup.session.sensors]
    dst_asns = sorted(
        asn
        for asn in {asn_of(address) for address in sensors}
        if asn is not None and asn != setup.asx
    )
    schedule = build_schedule(config, seed, candidates, sensors, dst_asns)
    recorder = FlightRecorder(
        open_after=config.open_after,
        close_after=config.close_after,
        retention=retention,
    )
    log, thinned = _build_monitor_log(
        setup, config, seed, schedule, paths, links, recorder
    )

    common = dict(
        asn_of=asn_of,
        diagnosers=setup.diagnosers,
        asx=setup.asx,
        window_width=window_width,
        window_capacity=window_capacity,
        open_after=config.open_after,
        close_after=config.close_after,
        policy=policy,
        max_pending=max_pending,
        overflow_limit=overflow_limit,
        workers=workers,
        degradation=DegradationReport(),
        cached_reports=cached_reports,
    )
    engine = build_engine(
        common,
        seed=seed,
        shards=shards,
        tenants=tenants,
        tenant_of=tenant_of,
        chaos_rate=chaos_rate,
        supervise=supervise,
        supervision=supervision,
        checkpoint_path=checkpoint_path,
        dlq_path=dlq_path,
    )
    started = time.perf_counter()
    reports = run_replay(log, engine, journal=journal)
    wall = time.perf_counter() - started

    # Score against the seeded ground truth, then classify from LG
    # evidence only — the comparison of the two is the headline metric.
    assign_truth(recorder.intervals, schedule, links, asn_of)
    lg = MonitorLookingGlass(
        setup.lg_service,
        setup.session.sim,
        setup.session.base_state,
        schedule,
        suffix_link_map(paths, asn_of),
    )
    classify_intervals(
        recorder.intervals, paths, asn_of, setup.lg_service, lg.lookup
    )
    detection = score_detection(
        schedule, recorder.intervals, links, asn_of, config.open_after
    )
    classifier = score_classifier(recorder.intervals)

    n_sensors = len(setup.session.sensors)
    all_pairs = n_sensors * (n_sensors - 1)
    return MonitorRunResult(
        config=config,
        seed=seed,
        schedule=schedule,
        recorder=recorder,
        reports=reports,
        events_total=len(log.events),
        wall_seconds=wall,
        pairs_monitored=len(paths),
        pairs_skipped=all_pairs - len(paths),
        lg_queries=lg.queries,
        detection=detection,
        classifier=classifier,
        quality=recorder.quality(asn_of),
        engine_counters=engine.counters(),
        ingest_counters=engine.ingest_counters(),
        window_counters=engine.window_counters(),
        detector_counters=engine.detector_counters(),
        stage_seconds=engine.stage_seconds(),
        shard_stats=(
            engine.shard_stats()
            if isinstance(engine, ShardedStreamEngine)
            else None
        ),
        supervision=(
            engine.supervision_stats()
            if isinstance(engine, SupervisedStreamEngine)
            else None
        ),
        observations_skipped=thinned,
    )
