"""The flight recorder: bounded history, bad intervals, quality scores.

The streaming engine answers "*why* is this failing right now"; the
flight recorder answers the questions an operator asks *afterwards*:
when was each pair down, for how long, how often did it flap, and how
healthy has each AS pair been over the whole run.

It rides on the same consecutive-observation streak machine as the
episode detector (:class:`~repro.core.streak.PairAlarmTracker`): a pair
enters a :class:`BadInterval` after ``open_after`` consecutive failed
liveness checks and leaves it after ``close_after`` consecutive
successes, so probe noise is absorbed by hysteresis rather than
post-hoc filtering.  A sensor that goes dark mid-interval **censors**
the interval (closed, ``censored=True``): silence is not recovery and
not failure, and censored intervals are excluded from false-alarm and
classifier scoring.

Retention is bounded by construction — per-pair raw observation
history and the baseline log are ``deque(maxlen=...)`` ring buffers, so
a month-long run holds the same memory as a ten-minute one.  The
intervals themselves (the recorder's *product*, like the engine's
episode reports) are kept in full.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.core.streak import Pair, PairAlarmTracker
from repro.errors import MonitorError
from repro.stream.episodes import DEFAULT_FLAP_WINDOW

__all__ = ["BadInterval", "PairQuality", "FlightRecorder"]


@dataclass
class BadInterval:
    """One contiguous stretch of confirmed unreachability for one pair.

    ``opened_at`` is the tick the ``open_after``-th consecutive failure
    landed; ``closed_at`` the tick the clearing success streak
    completed (``None`` while still open at end of run).  The scorer
    fills ``truth_mode``/``truth_label`` from the seeded schedule and
    the classifier fills ``verdict`` — keeping ground truth, detection
    and classification separable in tests.
    """

    pair: Pair
    opened_at: int
    closed_at: Optional[int] = None
    censored: bool = False
    truth_mode: str = ""
    truth_label: str = ""
    announced: bool = False
    verdict: str = ""

    @property
    def is_open(self) -> bool:
        return self.closed_at is None

    def duration(self, now: int) -> int:
        """Length in ticks (an open interval is measured up to ``now``)."""
        end = self.closed_at if self.closed_at is not None else now
        return max(1, end - self.opened_at + 1)


@dataclass
class PairQuality:
    """Health of one AS pair over the whole run."""

    src_asn: int
    dst_asn: int
    observations: int = 0
    failures: int = 0
    intervals: int = 0
    bad_ticks: int = 0
    worst_interval: int = 0
    flaps: int = 0

    @property
    def availability(self) -> float:
        """Fraction of liveness checks that succeeded (1.0 if unobserved)."""
        if not self.observations:
            return 1.0
        return 1.0 - self.failures / self.observations


class FlightRecorder:
    """Bounded-retention health recorder over a monitoring run.

    Drive it like the detector: :meth:`observe` per liveness check,
    :meth:`advance` once per tick after the tick's observations landed,
    :meth:`forget` when a sensor drops out, :meth:`note_baseline` when
    a baseline probe mesh refreshes.  Everything it keeps besides the
    interval list lives in fixed-size ring buffers.
    """

    def __init__(
        self,
        open_after: int = 2,
        close_after: int = 2,
        retention: int = 256,
        flap_window: int = DEFAULT_FLAP_WINDOW,
    ) -> None:
        if retention < 1:
            raise MonitorError(f"retention must be >= 1, got {retention}")
        if flap_window < 0:
            raise MonitorError(f"flap_window must be >= 0, got {flap_window}")
        self.retention = retention
        self.flap_window = flap_window
        self._tracker = PairAlarmTracker(open_after, close_after)
        self._history: Dict[Pair, Deque[Tuple[int, bool]]] = {}
        self._baselines: Deque[Tuple[int, int]] = deque(maxlen=retention)
        self._open: Dict[Pair, BadInterval] = {}
        self._last_closed: Dict[Pair, int] = {}
        self._obs: Dict[Pair, List[int]] = {}
        self.intervals: List[BadInterval] = []
        self.flaps = 0
        self.censored = 0
        self.last_tick = 0

    # ----------------------------------------------------------- ingestion

    def observe(self, tick: int, pair: Pair, reached: bool) -> None:
        """Fold one liveness check for ``pair`` at ``tick``."""
        self.last_tick = max(self.last_tick, tick)
        self._tracker.observe(pair, reached)
        history = self._history.get(pair)
        if history is None:
            history = self._history[pair] = deque(maxlen=self.retention)
        history.append((tick, reached))
        counts = self._obs.setdefault(pair, [0, 0])
        counts[0] += 1
        if not reached:
            counts[1] += 1

    def advance(self, tick: int) -> None:
        """Reconcile open intervals with the tracker's alarmed set."""
        self.last_tick = max(self.last_tick, tick)
        alarmed = set(self._tracker.alarmed_pairs())
        for pair in sorted(alarmed - set(self._open)):
            interval = BadInterval(pair=pair, opened_at=tick)
            last = self._last_closed.get(pair)
            if last is not None and tick - last <= self.flap_window:
                self.flaps += 1
            self._open[pair] = interval
            self.intervals.append(interval)
        for pair in sorted(set(self._open) - alarmed):
            interval = self._open.pop(pair)
            interval.closed_at = tick
            self._last_closed[pair] = tick

    def forget(self, tick: int, pair_member: str) -> None:
        """A sensor went dark: censor its open intervals, drop its state.

        Mirrors :meth:`PairAlarmTracker.forget` — silence must neither
        hold an interval open forever nor count as recovery.
        """
        self.last_tick = max(self.last_tick, tick)
        self._tracker.forget(pair_member)
        for pair in sorted(p for p in self._open if pair_member in p):
            interval = self._open.pop(pair)
            interval.closed_at = tick
            interval.censored = True
            self.censored += 1
            self._last_closed.pop(pair, None)

    def note_baseline(self, tick: int, pairs: int) -> None:
        """Record one baseline probe-mesh refresh (bounded log)."""
        self.last_tick = max(self.last_tick, tick)
        self._baselines.append((tick, pairs))

    # ------------------------------------------------------------- queries

    @property
    def open_intervals(self) -> Tuple[BadInterval, ...]:
        return tuple(self._open[pair] for pair in sorted(self._open))

    @property
    def baselines(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(self._baselines)

    def history(self, pair: Pair) -> Tuple[Tuple[int, bool], ...]:
        """The retained observation ring for one pair (newest last)."""
        return tuple(self._history.get(pair, ()))

    def timeline(self, ticks: int, buckets: int = 60) -> List[float]:
        """Health per time bucket in ``[0, 1]`` (1.0 = no bad intervals).

        Health of a bucket is the fraction of tracked pair-ticks *not*
        covered by a (non-censored) bad interval — the at-a-glance
        downtime strip of the monitor report.
        """
        if ticks < 1 or buckets < 1:
            raise MonitorError("timeline needs ticks >= 1 and buckets >= 1")
        buckets = min(buckets, ticks)
        width = ticks / buckets
        pairs = max(1, len(self._obs))
        bad = [0.0] * buckets
        for interval in self.intervals:
            if interval.censored:
                continue
            end = interval.closed_at if interval.closed_at is not None else ticks - 1
            for bucket in range(
                int(interval.opened_at / width), min(int(end / width), buckets - 1) + 1
            ):
                lo = bucket * width
                hi = min((bucket + 1) * width, ticks)
                overlap = min(end + 1, hi) - max(interval.opened_at, lo)
                if overlap > 0:
                    bad[bucket] += overlap
        return [
            max(0.0, 1.0 - bad[bucket] / (width * pairs))
            for bucket in range(buckets)
        ]

    def quality(self, asn_of: Callable[[str], int]) -> List[PairQuality]:
        """Per-AS-pair quality rows, worst availability first."""
        rows: Dict[Tuple[int, int], PairQuality] = {}

        def row(pair: Pair) -> PairQuality:
            key = (asn_of(pair[0]), asn_of(pair[1]))
            entry = rows.get(key)
            if entry is None:
                entry = rows[key] = PairQuality(src_asn=key[0], dst_asn=key[1])
            return entry

        for pair, (observations, failures) in self._obs.items():
            entry = row(pair)
            entry.observations += observations
            entry.failures += failures
        for interval in self.intervals:
            if interval.censored:
                continue
            entry = row(interval.pair)
            entry.intervals += 1
            duration = interval.duration(self.last_tick)
            entry.bad_ticks += duration
            entry.worst_interval = max(entry.worst_interval, duration)
        # Apportion flaps per AS pair by re-deriving them from intervals.
        flap_rows: Dict[Tuple[int, int], int] = {}
        seen_close: Dict[Pair, int] = {}
        for interval in sorted(
            self.intervals, key=lambda i: (i.opened_at, i.pair)
        ):
            last = seen_close.get(interval.pair)
            if (
                last is not None
                and interval.opened_at - last <= self.flap_window
            ):
                key = (asn_of(interval.pair[0]), asn_of(interval.pair[1]))
                flap_rows[key] = flap_rows.get(key, 0) + 1
            if interval.closed_at is not None and not interval.censored:
                seen_close[interval.pair] = interval.closed_at
        for key, flaps in flap_rows.items():
            if key in rows:
                rows[key].flaps = flaps
        return sorted(
            rows.values(),
            key=lambda q: (q.availability, -q.bad_ticks, q.src_asn, q.dst_asn),
        )

    def counters(self) -> Dict[str, int]:
        """Recorder accounting for the monitor report."""
        return {
            "pairs_tracked": self._tracker.pairs_tracked(),
            "intervals_total": len(self.intervals),
            "intervals_open": len(self._open),
            "intervals_censored": self.censored,
            "flaps": self.flaps,
            "baselines_kept": len(self._baselines),
        }
