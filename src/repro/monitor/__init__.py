"""Flight-recorder monitoring: long-horizon scenarios over the stream engine.

The package splits cleanly along the observe/record/judge boundary:

* :mod:`repro.monitor.scenario` — the knobs and the named catalog;
* :mod:`repro.monitor.schedule` — seeded expansion into outage timelines;
* :mod:`repro.monitor.runner` — driving the scenario through the
  streaming engine (serial, sharded or supervised);
* :mod:`repro.monitor.recorder` — bounded-retention health history,
  bad intervals, per-AS-pair quality;
* :mod:`repro.monitor.classify` — blocked-vs-failed disambiguation via
  the ND-LG Looking Glass discipline, plus ground-truth scoring;
* :mod:`repro.monitor.report` — the CLI rendering.
"""

from repro.monitor.classify import (
    BLOCKED,
    FAILED,
    ClassifierScore,
    DetectionStats,
    MonitorLookingGlass,
    assign_truth,
    classify_intervals,
    link_token,
    pair_link_map,
    path_tokens,
    score_classifier,
    score_detection,
    suffix_link_map,
)
from repro.monitor.recorder import BadInterval, FlightRecorder, PairQuality
from repro.monitor.report import render_monitor_report, render_monitor_timeline
from repro.monitor.runner import (
    MonitorRunResult,
    baseline_paths,
    make_monitor_setup,
    run_monitor,
)
from repro.monitor.scenario import (
    SCENARIOS,
    MonitorConfig,
    scenario,
    scenario_names,
)
from repro.monitor.schedule import (
    MonitorSchedule,
    Outage,
    build_schedule,
    monitor_plan,
)

__all__ = [
    "BLOCKED",
    "FAILED",
    "BadInterval",
    "ClassifierScore",
    "DetectionStats",
    "FlightRecorder",
    "MonitorConfig",
    "MonitorLookingGlass",
    "MonitorRunResult",
    "MonitorSchedule",
    "Outage",
    "PairQuality",
    "SCENARIOS",
    "assign_truth",
    "baseline_paths",
    "build_schedule",
    "classify_intervals",
    "link_token",
    "make_monitor_setup",
    "monitor_plan",
    "pair_link_map",
    "path_tokens",
    "render_monitor_report",
    "render_monitor_timeline",
    "run_monitor",
    "scenario",
    "scenario_names",
    "score_classifier",
    "score_detection",
    "suffix_link_map",
]
