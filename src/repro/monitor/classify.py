"""Blocked-vs-failed disambiguation and ground-truth scoring.

A monitored pair that stops answering has two very different stories
behind it: the route is *gone* (link down, maintenance, SRLG failure)
or the route is *fine* and an AS on it is silently dropping probe
packets.  The ND-LG insight (§5 of the paper) is that Looking Glass
servers disambiguate the two — an AS that blocks traceroute usually
still answers LG queries, so a route that is visible via LG while
end-to-end probes die means *blocked*, and a vanished route means
*failed*.

:class:`MonitorLookingGlass` is that control-plane oracle for a
monitoring run.  It reuses the real machinery end to end — the
converged RIB via :meth:`Simulator.routing
<repro.netsim.simulator.Simulator.routing>`, prefix resolution via
``mapper.prefix_containing`` and per-AS answers via
:meth:`LookingGlassService.query
<repro.netsim.lookingglass.LookingGlassService.query>` — and follows
the :data:`~repro.core.nd_lg.LgLookup` calling convention with the
logical tick standing in for the epoch.  Scheduled link outages make
the route invisible (the query answers ``None``, indistinguishable
from "no LG here", exactly as in ND-LG); AS-level probe blocking
leaves the RIB untouched, so the LG keeps answering.

Scoring is strictly separated: :func:`assign_truth` labels intervals
from the seeded schedule (what *actually* happened),
:func:`classify_intervals` fills verdicts using only what a real
monitor could see (probe failures + LG answers), and
:func:`score_classifier` / :func:`score_detection` compare the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.pathset import Pair, ProbePath
from repro.monitor.recorder import BadInterval
from repro.monitor.schedule import MonitorSchedule

__all__ = [
    "BLOCKED",
    "FAILED",
    "link_token",
    "path_tokens",
    "pair_link_map",
    "suffix_link_map",
    "MonitorLookingGlass",
    "assign_truth",
    "classify_intervals",
    "ClassifierScore",
    "score_classifier",
    "DetectionStats",
    "score_detection",
]

BLOCKED = "blocked"
FAILED = "failed"


def link_token(a: str, b: str) -> str:
    """Canonical undirected token for the physical link between two hops.

    Scheduled outages take physical links down, which kills *both*
    directions of every traceroute crossing them — so the schedule, the
    reachability model and the classifier all speak in one undirected
    token per link.
    """
    lo, hi = sorted((a, b))
    return f"{lo}<->{hi}"


def path_tokens(path: ProbePath) -> Tuple[str, ...]:
    """The undirected link tokens along a baseline path, in hop order."""
    return tuple(
        link_token(a, b)
        for a, b in zip(path.hops, path.hops[1:])
        if isinstance(a, str) and isinstance(b, str)
    )


def pair_link_map(paths: Dict[Pair, ProbePath]) -> Dict[Pair, FrozenSet[str]]:
    """Pair -> the link tokens its baseline path crosses."""
    return {pair: frozenset(path_tokens(path)) for pair, path in paths.items()}


def suffix_link_map(
    paths: Dict[Pair, ProbePath], asn_of: Callable[[str], Optional[int]]
) -> Dict[Tuple[int, str], FrozenSet[str]]:
    """``(asn, dst_address) -> links`` an LG answer from ``asn`` vouches for.

    Destination-based forwarding means an AS's route to ``dst`` follows
    the path suffix from that AS onwards; if any suffix link is down,
    the route is gone from that AS's point of view.  Built once from
    the baseline probe mesh.
    """
    suffixes: Dict[Tuple[int, str], FrozenSet[str]] = {}
    for path in paths.values():
        tokens = path_tokens(path)
        for index, hop in enumerate(path.hops):
            if not isinstance(hop, str):
                continue
            asn = asn_of(hop)
            if asn is None:
                continue
            key = (asn, path.dst)
            if key not in suffixes:
                suffixes[key] = frozenset(tokens[index:])
    return suffixes


class MonitorLookingGlass:
    """Per-tick LG answers for a scheduled monitoring run.

    ``lookup(asn, dst_address, tick)`` follows the
    :data:`~repro.core.nd_lg.LgLookup` convention (tick as epoch): the
    AS path from the converged baseline RIB, or ``None`` when the AS
    runs no LG *or* its route to the destination is gone — the two are
    deliberately indistinguishable, as in ND-LG.  A blocked AS answers
    normally: blocking drops probe packets, not BGP.
    """

    def __init__(
        self,
        lg_service,
        sim,
        base_state,
        schedule: MonitorSchedule,
        suffixes: Dict[Tuple[int, str], FrozenSet[str]],
    ) -> None:
        self._lg = lg_service
        self._mapper = sim.mapper
        self._routing = sim.routing(base_state)
        self._schedule = schedule
        self._suffixes = suffixes
        self.queries = 0

    def lookup(
        self, asn: int, dst_address: str, tick: int
    ) -> Optional[Tuple[int, ...]]:
        self.queries += 1
        suffix = self._suffixes.get((asn, dst_address), frozenset())
        if suffix & self._schedule.down_links_at(tick):
            return None
        prefix = self._mapper.prefix_containing(dst_address)
        return self._lg.query(asn, prefix, self._routing)


def assign_truth(
    intervals: Iterable[BadInterval],
    schedule: MonitorSchedule,
    pair_links: Dict[Pair, FrozenSet[str]],
    asn_of: Callable[[str], Optional[int]],
) -> None:
    """Label each interval with what the schedule says really happened.

    Evaluated at ``opened_at`` — the tick the confirming failure was
    observed, so whatever caused that failure is active then.  Priority
    mirrors the reachability model: a down path link fails the pair
    regardless of blocking, so link outages outrank AS blocks; an
    interval matching neither is measurement noise
    (``truth_label="none"``).  Censored intervals are left unlabelled.
    """
    for interval in intervals:
        if interval.censored:
            continue
        tick = interval.opened_at
        links = pair_links.get(interval.pair, frozenset())
        hit = links & schedule.down_links_at(tick)
        if hit:
            interval.truth_label = FAILED
            interval.announced = bool(hit & schedule.announced_links_at(tick))
            for outage in schedule.active_outages(tick):
                if hit & set(outage.links):
                    interval.truth_mode = outage.mode
                    break
        elif asn_of(interval.pair[1]) in schedule.blocked_asns_at(tick):
            interval.truth_label = BLOCKED
            interval.truth_mode = "as-block"
        else:
            interval.truth_label = "none"
            interval.truth_mode = "probe-noise"


def classify_intervals(
    intervals: Iterable[BadInterval],
    paths: Dict[Pair, ProbePath],
    asn_of: Callable[[str], Optional[int]],
    lg_service,
    lookup: Callable[[int, str, int], Optional[Tuple[int, ...]]],
) -> int:
    """Fill each interval's blocked-vs-failed verdict from LG evidence.

    The ND-LG discipline: walk the pair's baseline path and query the
    *first* AS that operates a Looking Glass.  A route in the answer
    while probes die means the packets are being dropped downstream —
    **blocked**; no answer means the route is gone — **failed** (also
    the conservative default when no path AS runs an LG at all).
    Returns the number of intervals classified.
    """
    classified = 0
    for interval in intervals:
        if interval.censored:
            continue
        path = paths.get(interval.pair)
        if path is None:
            continue
        verdict = FAILED
        for hop in path.hops:
            if not isinstance(hop, str):
                continue
            asn = asn_of(hop)
            if asn is None or not lg_service.has_lg(asn):
                continue
            answer = lookup(asn, interval.pair[1], interval.opened_at)
            verdict = BLOCKED if answer is not None else FAILED
            break
        interval.verdict = verdict
        classified += 1
    return classified


@dataclass(frozen=True)
class ClassifierScore:
    """Confusion counts over intervals with real (blocked/failed) truth.

    ``blocked`` is the positive class.  Empty denominators score 1.0 —
    a scenario with nothing to classify has made no mistakes.
    """

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def scored(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def precision_blocked(self) -> float:
        return self.tp / (self.tp + self.fp) if (self.tp + self.fp) else 1.0

    @property
    def recall_blocked(self) -> float:
        return self.tp / (self.tp + self.fn) if (self.tp + self.fn) else 1.0

    @property
    def precision_failed(self) -> float:
        return self.tn / (self.tn + self.fn) if (self.tn + self.fn) else 1.0

    @property
    def recall_failed(self) -> float:
        return self.tn / (self.tn + self.fp) if (self.tn + self.fp) else 1.0


def score_classifier(intervals: Iterable[BadInterval]) -> ClassifierScore:
    """Score verdicts against truth over genuinely-caused intervals.

    Noise intervals (truth ``none``) are excluded here — they are false
    *alarms*, accounted by :func:`score_detection`, not classification
    errors: there is no right answer to "blocked or failed?" for an
    outage that never happened.
    """
    tp = fp = fn = tn = 0
    for interval in intervals:
        if interval.censored or not interval.verdict:
            continue
        if interval.truth_label == BLOCKED:
            if interval.verdict == BLOCKED:
                tp += 1
            else:
                fn += 1
        elif interval.truth_label == FAILED:
            if interval.verdict == BLOCKED:
                fp += 1
            else:
                tn += 1
    return ClassifierScore(tp=tp, fp=fp, fn=fn, tn=tn)


@dataclass(frozen=True)
class DetectionStats:
    """How fast and how honestly the recorder noticed scheduled trouble."""

    outages_total: int
    outages_detected: int
    latencies: Tuple[int, ...]
    false_alarms: int
    intervals_scored: int

    @property
    def detected_fraction(self) -> float:
        return (
            self.outages_detected / self.outages_total
            if self.outages_total
            else 1.0
        )

    @property
    def latency_mean(self) -> float:
        return (
            sum(self.latencies) / len(self.latencies) if self.latencies else 0.0
        )

    @property
    def latency_p99(self) -> int:
        if not self.latencies:
            return 0
        ordered = sorted(self.latencies)
        return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]

    @property
    def false_alarm_rate(self) -> float:
        return (
            self.false_alarms / self.intervals_scored
            if self.intervals_scored
            else 0.0
        )


def score_detection(
    schedule: MonitorSchedule,
    intervals: Iterable[BadInterval],
    pair_links: Dict[Pair, FrozenSet[str]],
    asn_of: Callable[[str], Optional[int]],
    open_after: int,
) -> DetectionStats:
    """Detection latency and false-alarm accounting against the schedule.

    An outage is *detectable* when it hurts at least one monitored pair
    and lasts at least ``open_after`` ticks (shorter ones cannot
    legally confirm).  Its detection latency is the earliest interval
    open among affected pairs within the outage, minus the outage
    start.  A non-censored interval whose truth is ``none`` is a false
    alarm — the rate the hysteresis is graded on under flapping noise.
    """
    interval_list = [i for i in intervals if not i.censored]
    by_pair: Dict[Pair, List[BadInterval]] = {}
    for interval in interval_list:
        by_pair.setdefault(interval.pair, []).append(interval)

    total = detected = 0
    latencies: List[int] = []
    for outage in schedule.outages:
        if outage.mode == "sensor-churn" or outage.duration < open_after:
            continue
        if outage.mode == "as-block":
            affected = [
                pair for pair in pair_links if asn_of(pair[1]) == outage.asn
            ]
        else:
            targets = set(outage.links)
            affected = [
                pair for pair, links in pair_links.items() if links & targets
            ]
        if not affected:
            continue
        total += 1
        opened = [
            interval.opened_at
            for pair in affected
            for interval in by_pair.get(pair, ())
            if outage.start <= interval.opened_at <= outage.end
        ]
        if opened:
            detected += 1
            latencies.append(min(opened) - outage.start)

    false_alarms = sum(1 for i in interval_list if i.truth_label == "none")
    return DetectionStats(
        outages_total=total,
        outages_detected=detected,
        latencies=tuple(latencies),
        false_alarms=false_alarms,
        intervals_scored=len(interval_list),
    )
