"""Long-horizon monitoring scenarios: the knobs and the catalog.

Every workload the streaming engine replayed before this package was a
short, single-incident episode.  A real deployment watches the network
for weeks and sees an entirely different texture of trouble: links that
flap with heavy dwell-time tails, shared-risk groups that fail as a
unit, maintenance windows that roll through announced or not, probe
volume that breathes with the time of day, sensors that come and go,
and ASes that silently drop probe packets while their Looking Glass
keeps answering.  A :class:`MonitorConfig` names the rates and dwell
times of each of those behaviours; :data:`SCENARIOS` is the curated
catalog the CLI, the tests and the CI smoke lane all replay.

Scenario *decisions* never happen here — :mod:`repro.monitor.schedule`
routes every one of them through the generic seeded-hash seam of
:class:`~repro.faults.FaultPlan` (:meth:`~repro.faults.FaultPlan.fires`
/ :meth:`~repro.faults.FaultPlan.dwell_ticks` /
:meth:`~repro.faults.FaultPlan.pick`), so a scenario is a pure function
of ``(seed, config)`` and replays bit-for-bit serial, sharded, or
resumed mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.errors import MonitorError

__all__ = ["MonitorConfig", "SCENARIOS", "scenario", "scenario_names"]


@dataclass(frozen=True)
class MonitorConfig:
    """The knobs of one long-horizon monitoring scenario.

    All rates are per-candidate per-tick probabilities in ``[0, 1]``;
    all dwells are geometric means in ticks (capped at ``dwell_cap`` so
    one unlucky draw cannot freeze a whole scenario).  A zero rate (or
    a zero count) disables its behaviour entirely, so the default
    instance is a quiet network.

    Attributes
    ----------
    name:
        Catalog name, echoed in reports and artifact keys.
    ticks:
        Scenario length on the logical clock.
    flap_rate / flap_dwell / flap_links:
        Independent link flapping: each of ``flap_links`` seeded
        candidate links starts an outage at ``flap_rate`` per tick and
        stays down for a geometric dwell of mean ``flap_dwell``.
    srlg_rate / srlg_groups / srlg_size / srlg_dwell:
        Correlated failures: ``srlg_groups`` disjoint shared-risk link
        groups of ``srlg_size`` links each fail *as a unit*.
    maintenance_every / maintenance_duration / maintenance_links /
    maintenance_announced:
        Rolling maintenance: every ``maintenance_every`` ticks (at a
        seeded phase) a window of ``maintenance_duration`` ticks takes
        ``maintenance_links`` links down; each window is announced with
        probability ``maintenance_announced`` (announced downtime is
        expected downtime — it never counts as a false alarm).
    diurnal_period / diurnal_floor:
        Diurnal probe intensity: per-pair liveness checks thin to
        ``diurnal_floor`` of full volume at night over a cosine day of
        ``diurnal_period`` ticks (0 = constant full volume).
    churn_rate / churn_dwell:
        Sensor churn: each sensor goes dark at ``churn_rate`` per tick
        for a geometric dwell, with dropout/heartbeat events emitted at
        the edges.
    block_rate / block_dwell / block_ases:
        AS-level probe blocking: each of ``block_ases`` seeded
        destination ASes starts dropping probe packets at
        ``block_rate`` per tick — while its Looking Glass keeps
        answering, which is exactly what the blocked-vs-failed
        classifier (:mod:`repro.monitor.classify`) keys on.
    noise_rate:
        Measurement noise: a healthy liveness check is reported failed
        with this per-observation probability (the false-alarm fuel the
        detection hysteresis has to absorb).
    baseline_every:
        Emit a full ``pre``-epoch probe mesh every this many ticks (the
        flight recorder's bounded baseline history; 0 = never).
    dwell_cap:
        Hard cap on every dwell draw, in ticks.
    open_after / close_after:
        Bad-interval hysteresis of the flight recorder (same semantics
        as the stream episode detector's debounce).
    """

    name: str = "custom"
    ticks: int = 2000
    flap_rate: float = 0.0
    flap_dwell: float = 4.0
    flap_links: int = 2
    srlg_rate: float = 0.0
    srlg_groups: int = 0
    srlg_size: int = 2
    srlg_dwell: float = 6.0
    maintenance_every: int = 0
    maintenance_duration: int = 0
    maintenance_links: int = 1
    maintenance_announced: float = 0.5
    diurnal_period: int = 0
    diurnal_floor: float = 1.0
    churn_rate: float = 0.0
    churn_dwell: float = 8.0
    block_rate: float = 0.0
    block_dwell: float = 12.0
    block_ases: int = 1
    noise_rate: float = 0.0
    baseline_every: int = 50
    dwell_cap: int = 64
    open_after: int = 2
    close_after: int = 2

    def __post_init__(self) -> None:
        if self.ticks < 1:
            raise MonitorError(f"a scenario needs >= 1 tick, got {self.ticks}")
        for rate_name in (
            "flap_rate",
            "srlg_rate",
            "maintenance_announced",
            "churn_rate",
            "block_rate",
            "noise_rate",
            "diurnal_floor",
        ):
            value = getattr(self, rate_name)
            if not 0.0 <= value <= 1.0:
                raise MonitorError(
                    f"{rate_name} must be a probability in [0, 1], got {value}"
                )
        for dwell_name in ("flap_dwell", "srlg_dwell", "churn_dwell", "block_dwell"):
            value = getattr(self, dwell_name)
            if value < 1.0:
                raise MonitorError(
                    f"{dwell_name} must be >= 1 tick, got {value}"
                )
        for count_name in (
            "flap_links",
            "srlg_groups",
            "srlg_size",
            "maintenance_links",
            "block_ases",
        ):
            if getattr(self, count_name) < 0:
                raise MonitorError(
                    f"{count_name} must be >= 0, got {getattr(self, count_name)}"
                )
        if self.srlg_size < 1:
            raise MonitorError(f"srlg_size must be >= 1, got {self.srlg_size}")
        if self.maintenance_every < 0 or self.maintenance_duration < 0:
            raise MonitorError(
                "maintenance_every and maintenance_duration must be >= 0"
            )
        if self.maintenance_every and not self.maintenance_duration:
            raise MonitorError(
                "maintenance_every without maintenance_duration schedules "
                "zero-length windows; set both or neither"
            )
        if self.diurnal_period < 0:
            raise MonitorError(
                f"diurnal_period must be >= 0, got {self.diurnal_period}"
            )
        if self.dwell_cap < 1:
            raise MonitorError(f"dwell_cap must be >= 1, got {self.dwell_cap}")
        if self.baseline_every < 0:
            raise MonitorError(
                f"baseline_every must be >= 0, got {self.baseline_every}"
            )
        if self.open_after < 1 or self.close_after < 1:
            raise MonitorError(
                "bad-interval hysteresis thresholds must be >= 1 "
                f"(open_after={self.open_after}, close_after={self.close_after})"
            )

    def intensity(self, tick: int) -> float:
        """Probe intensity in ``[diurnal_floor, 1]`` at ``tick``.

        A cosine day: full volume at midday (``tick % period ==
        period/2``), ``diurnal_floor`` at midnight.  Pure float math on
        the logical clock — identical on every host.
        """
        if self.diurnal_period <= 0:
            return 1.0
        import math

        phase = (tick % self.diurnal_period) / self.diurnal_period
        daylight = 0.5 - 0.5 * math.cos(2.0 * math.pi * phase)
        return self.diurnal_floor + (1.0 - self.diurnal_floor) * daylight


#: The scenario catalog: every entry is a permanent, CI-smokeable
#: workload.  Knobs are tuned for the default deployment (6 sensors on
#: the 6x40 research internet) so each scenario exhibits its named
#: behaviour within ~2k ticks without drowning the others out.
SCENARIOS: Dict[str, MonitorConfig] = {
    config.name: config
    for config in (
        # Control: a quiet network.  Any bad interval here is a bug.
        MonitorConfig(name="steady"),
        # Independent link flapping with heavy churn.
        MonitorConfig(
            name="flaky-core",
            flap_rate=0.008,
            flap_dwell=6.0,
            flap_links=3,
        ),
        # Correlated multi-link failures via shared-risk link groups.
        MonitorConfig(
            name="srlg-storm",
            srlg_rate=0.004,
            srlg_groups=2,
            srlg_size=3,
            srlg_dwell=8.0,
        ),
        # Rolling maintenance windows, half of them unannounced.
        MonitorConfig(
            name="maintenance-week",
            maintenance_every=400,
            maintenance_duration=36,
            maintenance_links=2,
            maintenance_announced=0.5,
        ),
        # Diurnal probe volume plus measurement noise: the hysteresis
        # has to absorb single-observation lies at night-time volumes.
        MonitorConfig(
            name="diurnal-noise",
            diurnal_period=288,
            diurnal_floor=0.3,
            noise_rate=0.02,
        ),
        # Sensors coming and going mid-run.
        MonitorConfig(
            name="sensor-churn",
            churn_rate=0.002,
            churn_dwell=16.0,
        ),
        # ASes that drop probe packets but still answer their LG.
        MonitorConfig(
            name="blocked-as",
            block_rate=0.003,
            block_dwell=24.0,
            block_ases=2,
        ),
        # Everything at once, at operational (moderate) rates.
        MonitorConfig(
            name="mixed-ops",
            flap_rate=0.004,
            flap_dwell=6.0,
            flap_links=2,
            srlg_rate=0.002,
            srlg_groups=1,
            srlg_size=2,
            srlg_dwell=8.0,
            maintenance_every=600,
            maintenance_duration=30,
            maintenance_links=1,
            diurnal_period=288,
            diurnal_floor=0.5,
            churn_rate=0.001,
            churn_dwell=12.0,
            block_rate=0.002,
            block_dwell=20.0,
            block_ases=1,
            noise_rate=0.01,
        ),
    )
}


def scenario_names() -> Tuple[str, ...]:
    """Catalog names in a stable order (for ``--list-scenarios``)."""
    return tuple(SCENARIOS)


def scenario(name: str, ticks: int = 0) -> MonitorConfig:
    """Look up a catalog scenario, optionally re-scaled to ``ticks``.

    Re-scaling only changes the run length — rates and dwells are
    per-tick, so a shortened scenario is a prefix in distribution (and,
    because every decision is keyed on absolute tick, a shortened run's
    schedule is bit-identical to the same prefix of the full run).
    """
    try:
        config = SCENARIOS[name]
    except KeyError:
        raise MonitorError(
            f"unknown scenario {name!r}; catalog: {', '.join(SCENARIOS)}"
        ) from None
    if ticks and ticks != config.ticks:
        config = replace(config, ticks=ticks)
    return config
