"""Deterministic measurement-plane fault schedules.

NetDiagnoser's evaluation assumes an imperfect measurement plane — ASes
that block traceroute are only one fault mode (§3.4).  This module makes
every other realistic imperfection injectable *and reproducible*: dropped
and truncated traceroutes, anonymous ``'*'`` hops, sensor dropout, flaky
or rate-limited Looking Glass servers, and lost/delayed control-plane
feed messages.

Determinism is the design constraint.  Every decision is a pure function
of ``(plan seed, fault kind, decision key)``: the plan derives one
:class:`random.Random` per decision from ``f"{seed}/{kind}/{key}"`` —
the same seed-derivation idiom the experiment runner uses for its
per-placement RNGs (``f"{seed}/{placement_index}"``) — so decisions do
not depend on call order, process boundaries, or how many other faults
fired first.  A parallel sweep therefore injects bit-for-bit the same
faults as a serial one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Optional, Sequence, Tuple

from repro.errors import FaultInjectionError

__all__ = [
    "FaultConfig",
    "FaultPlan",
    "FAULT_MODES",
    "CORRUPTION_MODES",
    "CHAOS_MODES",
    "MONITOR_MODES",
    "FORGED_ADDRESS_PREFIX",
]

#: The five injectable fault modes, as named in reports and docs.
FAULT_MODES = (
    "traceroute",  # dropped/truncated probes, anonymous hops
    "sensor",      # sensor dropout
    "lg",          # flaky / rate-limited Looking Glasses
    "bgp-feed",    # lost/delayed BGP withdrawal messages
    "igp-feed",    # lost/delayed IGP link-down messages
)

#: The injectable *corruption* modes: faults that lie rather than omit.
#: Every mode produces a record that violates exactly one typed invariant
#: of :mod:`repro.validate`, so the ``strict`` policy detects each seeded
#: corruption by construction (no false negatives).
CORRUPTION_MODES = (
    "hop-forge",      # a forged hop address appears mid-trace
    "hop-dup",        # an identified hop is reported twice in a row
    "loop-inject",    # an earlier hop re-appears later (routing loop)
    "reach-flip",     # a completed probe is reported as unreachable
    "stale-replay",   # a pre-failure round is replayed as the T+ round
    "feed-dup",       # a control-feed message is delivered twice
    "feed-misorder",  # two feed messages arrive out of sequence order
    "lg-stale",       # an LG answers from a stale, wrong-epoch cache
)

#: The injectable *chaos* modes: faults of the diagnosis service itself
#: rather than the measurement plane.  These drive the supervision layer
#: (:mod:`repro.stream.supervise`): a supervised engine detects each mode
#: on the logical clock and recovers without losing accounted work.
CHAOS_MODES = (
    "shard-crash",    # a shard loses all in-memory state mid-tick
    "shard-stall",    # a shard stops responding for N ticks, then resumes
    "slow-shard",     # a shard's tick output arrives one tick late
    "worker-poison",  # a diagnoser variant crashes on one episode's input
)

#: The long-horizon *monitoring* scenario modes (:mod:`repro.monitor`).
#: Unlike the fault/corruption/chaos modes these have no dedicated
#: :class:`FaultConfig` rate fields — the monitor owns its knobs in
#: ``MonitorConfig`` and routes every decision through the generic
#: :meth:`FaultPlan.fires` / :meth:`FaultPlan.dwell_ticks` /
#: :meth:`FaultPlan.pick` seam, so scenario schedules stay pure
#: functions of ``(seed, mode, decision key)`` like every other fault.
MONITOR_MODES = (
    "link-flap",     # one link flaps with a seeded dwell-time distribution
    "srlg-failure",  # a shared-risk link group fails as a unit
    "maintenance",   # a rolling (announced or silent) maintenance window
    "diurnal-probe", # per-pair liveness checks thinned by time of day
    "sensor-churn",  # sensors going dark and returning mid-run
    "as-block",      # an AS drops probe packets but still answers its LG
    "probe-noise",   # a healthy liveness check reported as failed
)

#: Dotted prefix of forged hop addresses (TEST-NET-3): guaranteed outside
#: the simulator's ``10.0.0.0/8`` allocation, so a forged hop never
#: resolves through the IP-to-AS mapper.
FORGED_ADDRESS_PREFIX = "203.0.113."


@dataclass(frozen=True)
class FaultConfig:
    """Per-mode fault rates, all probabilities in ``[0, 1]``.

    The default instance injects nothing; :meth:`uniform` drives every
    mode at one shared rate (the degradation-curve sweep's x axis).

    Attributes
    ----------
    trace_drop_rate:
        Probability that one (src, dst, epoch) traceroute is lost
        entirely (probe host offline, ICMP filtered end-to-end).
    trace_truncate_rate:
        Probability that a traceroute stops mid-path: only a prefix of
        its hops is reported and reachability becomes unknown (reported
        as not reached — what a real truncated probe looks like).
    hop_anon_rate:
        Per-hop probability that an otherwise identified router answers
        anonymously — an extra ``'*'`` on top of AS-level blocking.
    sensor_dropout_rate:
        Per-sensor probability that a sensor is down for the whole
        event (contributes no probes in either epoch).
    lg_failure_rate:
        Per-attempt probability that a Looking Glass query fails
        transiently (the collector retries with backoff).
    lg_query_budget:
        Maximum queries one AS's Looking Glass accepts per event before
        rate-limiting every further query (``0`` = unlimited).
    feed_outage_rate:
        Probability that AS-X's whole control-plane feed is down for
        the event (:class:`~repro.errors.ControlPlaneFeedError`).
    withdrawal_loss_rate / withdrawal_delay_rate:
        Per-message probability that a BGP withdrawal never reaches the
        collector / arrives after the diagnosis deadline.
    igp_loss_rate / igp_delay_rate:
        The same for IGP link-down messages.
    hop_forge_rate:
        Per-trace probability that a forged hop address (from
        :data:`FORGED_ADDRESS_PREFIX`) is spliced into the reported path.
    hop_duplicate_rate:
        Per-trace probability that one identified hop is reported twice
        in a row (a duplicated ICMP answer).
    loop_inject_rate:
        Per-trace probability that an earlier hop re-appears later in
        the path — the spurious routing loop of real traceroute corpora.
    reach_flip_rate:
        Per-probe probability that a probe which reached its destination
        is reported as unreachable (a flipped reachability bit; the hop
        sequence still ends at the destination, which is the telltale).
    stale_replay_rate:
        Per-pair probability that the sensor replays its pre-failure
        (T-) measurement as the current T+ round — the §6 clock-skew
        hazard.  The replayed record keeps its ``pre`` epoch tag.
    feed_duplicate_rate / feed_misorder_rate:
        Per-message probabilities that a control-feed message (BGP
        withdrawal or IGP link-down) is delivered twice / swapped with
        its predecessor so arrival order disagrees with sequence order.
    lg_stale_rate:
        Per-query probability that a Looking Glass answers from a stale
        cache: the AS path of the *other* epoch, recorded at the wrong
        vantage (its head AS is not the queried AS).
    shard_crash_rate:
        Per-(shard, tick) probability that the shard crashes at the end
        of that tick, losing all state accumulated since its last
        checkpoint.  The supervisor restarts it from the checkpoint and
        replays the journalled tail.
    shard_stall_rate:
        Per-(shard, tick) probability that the shard stops heartbeating
        for a few ticks and then resumes with its state intact (a long
        GC pause, a wedged host).  Its events buffer while it is dark.
    slow_shard_rate:
        Per-(shard, tick) probability that the shard's tick output is
        one tick late: its events for tick *t* are folded only after
        tick *t* has otherwise completed.
    worker_poison_rate:
        Per-(variant, episode) probability that the diagnosis worker for
        that variant crashes on that episode's input — the poison-pill
        mode the circuit breaker and dead-letter queue exist for.
    """

    trace_drop_rate: float = 0.0
    trace_truncate_rate: float = 0.0
    hop_anon_rate: float = 0.0
    sensor_dropout_rate: float = 0.0
    lg_failure_rate: float = 0.0
    lg_query_budget: int = 0
    feed_outage_rate: float = 0.0
    withdrawal_loss_rate: float = 0.0
    withdrawal_delay_rate: float = 0.0
    igp_loss_rate: float = 0.0
    igp_delay_rate: float = 0.0
    hop_forge_rate: float = 0.0
    hop_duplicate_rate: float = 0.0
    loop_inject_rate: float = 0.0
    reach_flip_rate: float = 0.0
    stale_replay_rate: float = 0.0
    feed_duplicate_rate: float = 0.0
    feed_misorder_rate: float = 0.0
    lg_stale_rate: float = 0.0
    shard_crash_rate: float = 0.0
    shard_stall_rate: float = 0.0
    slow_shard_rate: float = 0.0
    worker_poison_rate: float = 0.0

    def __post_init__(self) -> None:
        for field in fields(self):
            value = getattr(self, field.name)
            if field.name == "lg_query_budget":
                if value < 0:
                    raise FaultInjectionError(
                        f"lg_query_budget must be >= 0, got {value}"
                    )
            elif not 0.0 <= value <= 1.0:
                raise FaultInjectionError(
                    f"{field.name} must be a probability in [0, 1], got {value}"
                )

    @classmethod
    def uniform(cls, rate: float) -> "FaultConfig":
        """Every fault mode at the same rate (the degradation sweep)."""
        return cls(
            trace_drop_rate=rate,
            trace_truncate_rate=rate,
            hop_anon_rate=rate,
            sensor_dropout_rate=rate,
            lg_failure_rate=rate,
            feed_outage_rate=rate,
            withdrawal_loss_rate=rate,
            withdrawal_delay_rate=rate,
            igp_loss_rate=rate,
            igp_delay_rate=rate,
        )

    @classmethod
    def corruption(cls, rate: float) -> "FaultConfig":
        """Every *corruption* mode at the same rate, no omission faults.

        This is the x axis of ``python -m repro degradation --corrupt``:
        the measurement plane returns complete but *lying* inputs, which
        only a validation policy can screen out.
        """
        return cls(
            hop_forge_rate=rate,
            hop_duplicate_rate=rate,
            loop_inject_rate=rate,
            reach_flip_rate=rate,
            stale_replay_rate=rate,
            feed_duplicate_rate=rate,
            feed_misorder_rate=rate,
            lg_stale_rate=rate,
        )

    @classmethod
    def chaos(cls, rate: float) -> "FaultConfig":
        """Every *chaos* mode at the same rate, nothing else.

        This is what ``--chaos RATE`` builds: the measurement plane is
        clean, but the diagnosis service itself crashes, stalls, lags,
        and chokes on poison inputs at ``rate``.
        """
        return cls(
            shard_crash_rate=rate,
            shard_stall_rate=rate,
            slow_shard_rate=rate,
            worker_poison_rate=rate,
        )

    _CORRUPTION_FIELDS = (
        "hop_forge_rate",
        "hop_duplicate_rate",
        "loop_inject_rate",
        "reach_flip_rate",
        "stale_replay_rate",
        "feed_duplicate_rate",
        "feed_misorder_rate",
        "lg_stale_rate",
    )

    def any_faults(self) -> bool:
        """True when at least one mode (omission or corruption) can fire."""
        return any(
            getattr(self, field.name)
            for field in fields(self)
            if field.name != "lg_query_budget"
        ) or bool(self.lg_query_budget)

    _CHAOS_FIELDS = (
        "shard_crash_rate",
        "shard_stall_rate",
        "slow_shard_rate",
        "worker_poison_rate",
    )

    def any_corruption(self) -> bool:
        """True when at least one corruption mode can fire."""
        return any(getattr(self, name) for name in self._CORRUPTION_FIELDS)

    def any_chaos(self) -> bool:
        """True when at least one service-chaos mode can fire."""
        return any(getattr(self, name) for name in self._CHAOS_FIELDS)


class FaultPlan:
    """One deterministic fault schedule, derived from a seed.

    A plan is cheap (seed string + config), picklable, and safe to share
    or re-derive across processes: the decisions it hands out are a pure
    function of its seed, never of its call history.  The runner builds
    one plan per placement (``f"{seed}/{placement_index}"``) and scopes
    it per sampled scenario (:meth:`scoped`), which is exactly what
    keeps a ``workers=N`` sweep bit-identical to a serial one.
    """

    def __init__(self, seed: object, config: FaultConfig) -> None:
        self.seed = str(seed)
        self.config = config

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"FaultPlan(seed={self.seed!r}, config={self.config!r})"

    def scoped(self, suffix: object) -> "FaultPlan":
        """A sub-plan with an extended seed (per scenario, per kind...)."""
        return FaultPlan(f"{self.seed}/{suffix}", self.config)

    # ------------------------------------------------------------ decisions

    def _rng(self, kind: str, *key: object) -> random.Random:
        parts = "/".join(str(part) for part in key)
        return random.Random(f"{self.seed}/{kind}/{parts}")

    def _fires(self, rate: float, kind: str, *key: object) -> bool:
        if rate <= 0.0:
            return False
        return self._rng(kind, *key).random() < rate

    # -- generic seam (monitor scenarios and other callers with own knobs)

    def fires(self, rate: float, kind: str, *key: object) -> bool:
        """Does the decision named ``(kind, *key)`` fire at ``rate``?

        The public face of the seeded-hash machinery for callers whose
        rates live outside :class:`FaultConfig` (the :mod:`repro.monitor`
        scenario engine).  Same contract as every built-in mode: a pure
        function of ``(plan seed, kind, key)``, independent of call
        order and of every other decision.
        """
        if not 0.0 <= rate <= 1.0:
            raise FaultInjectionError(
                f"rate for {kind!r} must be a probability in [0, 1], got {rate}"
            )
        return self._fires(rate, kind, *key)

    def dwell_ticks(
        self, mean: float, cap: int, kind: str, *key: object
    ) -> int:
        """A seeded dwell time in ``[1, cap]`` with geometric mean ``mean``.

        Drives how long a flapped link stays down, a stalled sensor stays
        dark, a blocking filter stays installed.  Geometric (memoryless)
        dwell is the classic link-flap model; the cap keeps one unlucky
        draw from freezing a whole scenario.
        """
        if mean < 1.0 or cap < 1:
            raise FaultInjectionError(
                f"dwell for {kind!r} needs mean >= 1 and cap >= 1 "
                f"(got mean={mean}, cap={cap})"
            )
        rng = self._rng(kind, *key)
        continue_p = 1.0 - 1.0 / mean
        dwell = 1
        while dwell < cap and rng.random() < continue_p:
            dwell += 1
        return dwell

    def pick(self, population: Sequence, k: int, kind: str, *key: object) -> list:
        """A seeded ``k``-sample of ``population`` (sorted first).

        Sorting before sampling makes the draw independent of the
        caller's iteration order — two processes enumerating the same
        candidate pool differently still pick the same members.
        """
        pool = sorted(population)
        if k > len(pool):
            raise FaultInjectionError(
                f"cannot pick {k} of {len(pool)} candidates for {kind!r}"
            )
        return self._rng(kind, *key).sample(pool, k)

    # -- traceroute plane

    def drop_trace(self, src: str, dst: str, epoch: str) -> bool:
        """Lose the (src, dst) traceroute of ``epoch`` entirely?"""
        return self._fires(
            self.config.trace_drop_rate, "trace-drop", src, dst, epoch
        )

    def truncate_trace(
        self, src: str, dst: str, epoch: str, n_hops: int
    ) -> Optional[int]:
        """Hops to keep when this trace is truncated, else ``None``.

        A truncated trace keeps a uniform non-empty strict prefix of its
        hops, so there is always at least the first hop and never the
        full path.
        """
        if n_hops < 2:
            return None
        rng = self._rng("trace-truncate", src, dst, epoch)
        if self.config.trace_truncate_rate <= 0.0:
            return None
        if rng.random() >= self.config.trace_truncate_rate:
            return None
        return rng.randint(1, n_hops - 1)

    def anonymize_hop(self, src: str, dst: str, epoch: str, index: int) -> bool:
        """Does hop ``index`` of this trace answer anonymously?"""
        return self._fires(
            self.config.hop_anon_rate, "hop-anon", src, dst, epoch, index
        )

    # -- sensor plane

    def sensor_down(self, address: str) -> bool:
        """Is the sensor at ``address`` down for this event?"""
        return self._fires(
            self.config.sensor_dropout_rate, "sensor-down", address
        )

    # -- Looking Glass plane

    def lg_attempt_fails(
        self, asn: int, dst_address: str, epoch: str, attempt: int
    ) -> bool:
        """Does attempt number ``attempt`` of this LG query fail?"""
        return self._fires(
            self.config.lg_failure_rate, "lg-fail", asn, dst_address, epoch, attempt
        )

    # -- control-plane feeds

    def feed_outage(self) -> bool:
        """Is AS-X's whole control-plane feed down for this event?"""
        return self._fires(self.config.feed_outage_rate, "feed-outage")

    def lose_withdrawal(self, prefix: str, at: str, frm: str) -> bool:
        return self._fires(
            self.config.withdrawal_loss_rate, "wd-loss", prefix, at, frm
        )

    def delay_withdrawal(self, prefix: str, at: str, frm: str) -> bool:
        return self._fires(
            self.config.withdrawal_delay_rate, "wd-delay", prefix, at, frm
        )

    def lose_igp(self, address_a: str, address_b: str) -> bool:
        return self._fires(
            self.config.igp_loss_rate, "igp-loss", address_a, address_b
        )

    def delay_igp(self, address_a: str, address_b: str) -> bool:
        return self._fires(
            self.config.igp_delay_rate, "igp-delay", address_a, address_b
        )

    # -- corruption: the measurement plane lies instead of omitting

    def forge_hop(
        self, src: str, dst: str, epoch: str, n_hops: int
    ) -> Optional[Tuple[int, str]]:
        """(insertion index, forged address) for this trace, or ``None``.

        The forged address comes from :data:`FORGED_ADDRESS_PREFIX` and
        is spliced between two existing hops, never displacing the
        endpoint positions.
        """
        if n_hops < 2 or self.config.hop_forge_rate <= 0.0:
            return None
        rng = self._rng("hop-forge", src, dst, epoch)
        if rng.random() >= self.config.hop_forge_rate:
            return None
        index = rng.randint(1, n_hops - 1)
        return index, f"{FORGED_ADDRESS_PREFIX}{rng.randint(1, 254)}"

    def duplicate_hop(
        self, src: str, dst: str, epoch: str, n_hops: int
    ) -> Optional[int]:
        """Interior hop index to report twice in a row, or ``None``."""
        if n_hops < 3 or self.config.hop_duplicate_rate <= 0.0:
            return None
        rng = self._rng("hop-dup", src, dst, epoch)
        if rng.random() >= self.config.hop_duplicate_rate:
            return None
        return rng.randint(1, n_hops - 2)

    def inject_loop(
        self, src: str, dst: str, epoch: str, n_hops: int
    ) -> Optional[Tuple[int, int]]:
        """(earlier index, re-insert-after index) of a spurious loop.

        The hop at the first index re-appears after the second, so its
        address occurs twice non-adjacently — the classic looping trace.
        """
        if n_hops < 3 or self.config.loop_inject_rate <= 0.0:
            return None
        rng = self._rng("loop-inject", src, dst, epoch)
        if rng.random() >= self.config.loop_inject_rate:
            return None
        earlier = rng.randint(0, n_hops - 3)
        later = rng.randint(earlier + 1, n_hops - 2)
        return earlier, later

    def flip_reach_bit(self, src: str, dst: str, epoch: str) -> bool:
        """Report this completed probe as unreachable?"""
        return self._fires(
            self.config.reach_flip_rate, "reach-flip", src, dst, epoch
        )

    def stale_replay(self, src: str, dst: str) -> bool:
        """Does this sensor replay its T- probe of (src, dst) as T+?"""
        return self._fires(self.config.stale_replay_rate, "stale-replay", src, dst)

    def duplicate_feed_message(self, kind: str, *key: object) -> bool:
        """Is this control-feed message delivered twice?"""
        return self._fires(
            self.config.feed_duplicate_rate, f"feed-dup/{kind}", *key
        )

    def misorder_feed_message(self, kind: str, *key: object) -> bool:
        """Does this message arrive before its predecessor?"""
        return self._fires(
            self.config.feed_misorder_rate, f"feed-misorder/{kind}", *key
        )

    def lg_stale_answer(self, asn: int, dst_address: str, epoch: str) -> bool:
        """Does this Looking Glass answer from its stale cache?"""
        return self._fires(
            self.config.lg_stale_rate, "lg-stale", asn, dst_address, epoch
        )

    def lg_backoff_jitter(
        self, asn: int, dst_address: str, epoch: str, attempt: int
    ) -> float:
        """Deterministic jitter factor in ``[0, 1)`` for one retry delay.

        The collector multiplies its exponential delay by
        ``0.5 + jitter`` so concurrent retries against one flaky Looking
        Glass decorrelate instead of thundering in lockstep, while the
        schedule stays a pure function of the run seed.
        """
        return self._rng("lg-jitter", asn, dst_address, epoch, attempt).random()

    # -- service chaos: faults of the diagnosis service itself

    def shard_crashes(self, shard: int, tick: int) -> bool:
        """Does shard ``shard`` crash at the end of tick ``tick``?"""
        return self._fires(
            self.config.shard_crash_rate, "shard-crash", shard, tick
        )

    def shard_stall_ticks(self, shard: int, tick: int) -> int:
        """Ticks shard ``shard`` goes dark from ``tick`` (0 = no stall).

        A stalled shard keeps its state but stops heartbeating; the
        supervisor buffers its events and folds them on resume.
        """
        if self.config.shard_stall_rate <= 0.0:
            return 0
        rng = self._rng("shard-stall", shard, tick)
        if rng.random() >= self.config.shard_stall_rate:
            return 0
        return rng.randint(1, 3)

    def shard_slow(self, shard: int, tick: int) -> bool:
        """Is shard ``shard``'s output for tick ``tick`` one tick late?"""
        return self._fires(
            self.config.slow_shard_rate, "slow-shard", shard, tick
        )

    def worker_poisoned(self, variant: str, episode_id: str) -> bool:
        """Does the ``variant`` worker crash on this episode's input?"""
        return self._fires(
            self.config.worker_poison_rate, "worker-poison", variant, episode_id
        )

    # ------------------------------------------------------------ plumbing

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FaultPlan)
            and self.seed == other.seed
            and self.config == other.config
        )

    def __hash__(self) -> int:
        return hash((self.seed, self.config))

    def __getstate__(self) -> Tuple[str, FaultConfig]:
        return (self.seed, self.config)

    def __setstate__(self, state: Tuple[str, FaultConfig]) -> None:
        self.seed, self.config = state
