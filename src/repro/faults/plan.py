"""Deterministic measurement-plane fault schedules.

NetDiagnoser's evaluation assumes an imperfect measurement plane — ASes
that block traceroute are only one fault mode (§3.4).  This module makes
every other realistic imperfection injectable *and reproducible*: dropped
and truncated traceroutes, anonymous ``'*'`` hops, sensor dropout, flaky
or rate-limited Looking Glass servers, and lost/delayed control-plane
feed messages.

Determinism is the design constraint.  Every decision is a pure function
of ``(plan seed, fault kind, decision key)``: the plan derives one
:class:`random.Random` per decision from ``f"{seed}/{kind}/{key}"`` —
the same seed-derivation idiom the experiment runner uses for its
per-placement RNGs (``f"{seed}/{placement_index}"``) — so decisions do
not depend on call order, process boundaries, or how many other faults
fired first.  A parallel sweep therefore injects bit-for-bit the same
faults as a serial one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Optional, Tuple

from repro.errors import FaultInjectionError

__all__ = ["FaultConfig", "FaultPlan", "FAULT_MODES"]

#: The five injectable fault modes, as named in reports and docs.
FAULT_MODES = (
    "traceroute",  # dropped/truncated probes, anonymous hops
    "sensor",      # sensor dropout
    "lg",          # flaky / rate-limited Looking Glasses
    "bgp-feed",    # lost/delayed BGP withdrawal messages
    "igp-feed",    # lost/delayed IGP link-down messages
)


@dataclass(frozen=True)
class FaultConfig:
    """Per-mode fault rates, all probabilities in ``[0, 1]``.

    The default instance injects nothing; :meth:`uniform` drives every
    mode at one shared rate (the degradation-curve sweep's x axis).

    Attributes
    ----------
    trace_drop_rate:
        Probability that one (src, dst, epoch) traceroute is lost
        entirely (probe host offline, ICMP filtered end-to-end).
    trace_truncate_rate:
        Probability that a traceroute stops mid-path: only a prefix of
        its hops is reported and reachability becomes unknown (reported
        as not reached — what a real truncated probe looks like).
    hop_anon_rate:
        Per-hop probability that an otherwise identified router answers
        anonymously — an extra ``'*'`` on top of AS-level blocking.
    sensor_dropout_rate:
        Per-sensor probability that a sensor is down for the whole
        event (contributes no probes in either epoch).
    lg_failure_rate:
        Per-attempt probability that a Looking Glass query fails
        transiently (the collector retries with backoff).
    lg_query_budget:
        Maximum queries one AS's Looking Glass accepts per event before
        rate-limiting every further query (``0`` = unlimited).
    feed_outage_rate:
        Probability that AS-X's whole control-plane feed is down for
        the event (:class:`~repro.errors.ControlPlaneFeedError`).
    withdrawal_loss_rate / withdrawal_delay_rate:
        Per-message probability that a BGP withdrawal never reaches the
        collector / arrives after the diagnosis deadline.
    igp_loss_rate / igp_delay_rate:
        The same for IGP link-down messages.
    """

    trace_drop_rate: float = 0.0
    trace_truncate_rate: float = 0.0
    hop_anon_rate: float = 0.0
    sensor_dropout_rate: float = 0.0
    lg_failure_rate: float = 0.0
    lg_query_budget: int = 0
    feed_outage_rate: float = 0.0
    withdrawal_loss_rate: float = 0.0
    withdrawal_delay_rate: float = 0.0
    igp_loss_rate: float = 0.0
    igp_delay_rate: float = 0.0

    def __post_init__(self) -> None:
        for field in fields(self):
            value = getattr(self, field.name)
            if field.name == "lg_query_budget":
                if value < 0:
                    raise FaultInjectionError(
                        f"lg_query_budget must be >= 0, got {value}"
                    )
            elif not 0.0 <= value <= 1.0:
                raise FaultInjectionError(
                    f"{field.name} must be a probability in [0, 1], got {value}"
                )

    @classmethod
    def uniform(cls, rate: float) -> "FaultConfig":
        """Every fault mode at the same rate (the degradation sweep)."""
        return cls(
            trace_drop_rate=rate,
            trace_truncate_rate=rate,
            hop_anon_rate=rate,
            sensor_dropout_rate=rate,
            lg_failure_rate=rate,
            feed_outage_rate=rate,
            withdrawal_loss_rate=rate,
            withdrawal_delay_rate=rate,
            igp_loss_rate=rate,
            igp_delay_rate=rate,
        )

    def any_faults(self) -> bool:
        """True when at least one mode can fire."""
        return any(
            getattr(self, field.name)
            for field in fields(self)
            if field.name != "lg_query_budget"
        ) or bool(self.lg_query_budget)


class FaultPlan:
    """One deterministic fault schedule, derived from a seed.

    A plan is cheap (seed string + config), picklable, and safe to share
    or re-derive across processes: the decisions it hands out are a pure
    function of its seed, never of its call history.  The runner builds
    one plan per placement (``f"{seed}/{placement_index}"``) and scopes
    it per sampled scenario (:meth:`scoped`), which is exactly what
    keeps a ``workers=N`` sweep bit-identical to a serial one.
    """

    def __init__(self, seed: object, config: FaultConfig) -> None:
        self.seed = str(seed)
        self.config = config

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"FaultPlan(seed={self.seed!r}, config={self.config!r})"

    def scoped(self, suffix: object) -> "FaultPlan":
        """A sub-plan with an extended seed (per scenario, per kind...)."""
        return FaultPlan(f"{self.seed}/{suffix}", self.config)

    # ------------------------------------------------------------ decisions

    def _rng(self, kind: str, *key: object) -> random.Random:
        parts = "/".join(str(part) for part in key)
        return random.Random(f"{self.seed}/{kind}/{parts}")

    def _fires(self, rate: float, kind: str, *key: object) -> bool:
        if rate <= 0.0:
            return False
        return self._rng(kind, *key).random() < rate

    # -- traceroute plane

    def drop_trace(self, src: str, dst: str, epoch: str) -> bool:
        """Lose the (src, dst) traceroute of ``epoch`` entirely?"""
        return self._fires(
            self.config.trace_drop_rate, "trace-drop", src, dst, epoch
        )

    def truncate_trace(
        self, src: str, dst: str, epoch: str, n_hops: int
    ) -> Optional[int]:
        """Hops to keep when this trace is truncated, else ``None``.

        A truncated trace keeps a uniform non-empty strict prefix of its
        hops, so there is always at least the first hop and never the
        full path.
        """
        if n_hops < 2:
            return None
        rng = self._rng("trace-truncate", src, dst, epoch)
        if self.config.trace_truncate_rate <= 0.0:
            return None
        if rng.random() >= self.config.trace_truncate_rate:
            return None
        return rng.randint(1, n_hops - 1)

    def anonymize_hop(self, src: str, dst: str, epoch: str, index: int) -> bool:
        """Does hop ``index`` of this trace answer anonymously?"""
        return self._fires(
            self.config.hop_anon_rate, "hop-anon", src, dst, epoch, index
        )

    # -- sensor plane

    def sensor_down(self, address: str) -> bool:
        """Is the sensor at ``address`` down for this event?"""
        return self._fires(
            self.config.sensor_dropout_rate, "sensor-down", address
        )

    # -- Looking Glass plane

    def lg_attempt_fails(
        self, asn: int, dst_address: str, epoch: str, attempt: int
    ) -> bool:
        """Does attempt number ``attempt`` of this LG query fail?"""
        return self._fires(
            self.config.lg_failure_rate, "lg-fail", asn, dst_address, epoch, attempt
        )

    # -- control-plane feeds

    def feed_outage(self) -> bool:
        """Is AS-X's whole control-plane feed down for this event?"""
        return self._fires(self.config.feed_outage_rate, "feed-outage")

    def lose_withdrawal(self, prefix: str, at: str, frm: str) -> bool:
        return self._fires(
            self.config.withdrawal_loss_rate, "wd-loss", prefix, at, frm
        )

    def delay_withdrawal(self, prefix: str, at: str, frm: str) -> bool:
        return self._fires(
            self.config.withdrawal_delay_rate, "wd-delay", prefix, at, frm
        )

    def lose_igp(self, address_a: str, address_b: str) -> bool:
        return self._fires(
            self.config.igp_loss_rate, "igp-loss", address_a, address_b
        )

    def delay_igp(self, address_a: str, address_b: str) -> bool:
        return self._fires(
            self.config.igp_delay_rate, "igp-delay", address_a, address_b
        )

    # ------------------------------------------------------------ plumbing

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FaultPlan)
            and self.seed == other.seed
            and self.config == other.config
        )

    def __hash__(self) -> int:
        return hash((self.seed, self.config))

    def __getstate__(self) -> Tuple[str, FaultConfig]:
        return (self.seed, self.config)

    def __setstate__(self, state: Tuple[str, FaultConfig]) -> None:
        self.seed, self.config = state
