"""Deterministic measurement-plane fault injection.

The substrate normally hands every algorithm clean, complete inputs; the
paper's realistic regime is the opposite — partial traceroutes, dead
sensors, flaky Looking Glasses, lossy control-plane feeds.  This package
supplies:

* :class:`FaultConfig` — per-mode fault rates;
* :class:`FaultPlan` — a seeded, order-independent fault schedule
  (parallel sweeps inject bit-for-bit the same faults as serial ones);
* :class:`DegradationReport` — per-run accounting of what was missing.

Beyond *omission* faults (data goes missing), the plan also drives
*corruption* modes (:data:`CORRUPTION_MODES`): forged and duplicated
hops, injected routing loops, stale pre-failure rounds replayed as
current, flipped reachability bits, duplicated/misordered feed
messages, and Looking Glass answers served from the wrong epoch.
Corrupted records are screened by :mod:`repro.validate` before they
reach a diagnoser.

A third family, the *chaos* modes (:data:`CHAOS_MODES`), faults the
diagnosis service itself — shard crashes, stalls, slow shards, poisoned
diagnosis workers — and drives the supervision layer of
:mod:`repro.stream.supervise`.

Injection happens at the measurement seams (probing, sensors, Looking
Glass, collector feeds); the diagnosis layer never sees this package,
only the degraded inputs — exactly like a real deployment.
"""

from repro.faults.plan import (
    CHAOS_MODES,
    CORRUPTION_MODES,
    FAULT_MODES,
    FORGED_ADDRESS_PREFIX,
    FaultConfig,
    FaultPlan,
)
from repro.faults.report import DegradationReport

__all__ = [
    "CHAOS_MODES",
    "CORRUPTION_MODES",
    "FAULT_MODES",
    "FORGED_ADDRESS_PREFIX",
    "FaultConfig",
    "FaultPlan",
    "DegradationReport",
]
