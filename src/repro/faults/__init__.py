"""Deterministic measurement-plane fault injection.

The substrate normally hands every algorithm clean, complete inputs; the
paper's realistic regime is the opposite — partial traceroutes, dead
sensors, flaky Looking Glasses, lossy control-plane feeds.  This package
supplies:

* :class:`FaultConfig` — per-mode fault rates;
* :class:`FaultPlan` — a seeded, order-independent fault schedule
  (parallel sweeps inject bit-for-bit the same faults as serial ones);
* :class:`DegradationReport` — per-run accounting of what was missing.

Injection happens at the measurement seams (probing, sensors, Looking
Glass, collector feeds); the diagnosis layer never sees this package,
only the degraded inputs — exactly like a real deployment.
"""

from repro.faults.plan import FAULT_MODES, FaultConfig, FaultPlan
from repro.faults.report import DegradationReport

__all__ = ["FAULT_MODES", "FaultConfig", "FaultPlan", "DegradationReport"]
