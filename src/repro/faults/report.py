"""Per-run accounting of what the fault plan took away.

Graceful degradation is only trustworthy when it is *legible*: a run
that silently lost half its probes reads like a bad algorithm instead of
a bad measurement plane.  Every faulted measurement step increments a
counter here; the report travels on the
:class:`~repro.experiments.runner.RunRecord` and is folded into the
batch-level :class:`~repro.experiments.runner.RunnerStats`, whose
rendering surfaces the totals next to the accuracy numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List

__all__ = ["DegradationReport"]


@dataclass
class DegradationReport:
    """What one diagnosis run had to live without.

    ``diagnoser_errors`` maps algorithm label to the number of times its
    diagnosis failed outright and an empty best-effort hypothesis was
    scored instead; ``notes`` carries free-form one-liners ("control
    feed outage") for humans reading a single run.
    """

    probes_dropped: int = 0
    probes_truncated: int = 0
    hops_anonymized: int = 0
    sensors_down: int = 0
    pairs_discarded: int = 0
    masked_failures: int = 0
    lg_failures: int = 0
    lg_retries: int = 0
    lg_exhausted: int = 0
    lg_rate_limited: int = 0
    withdrawals_lost: int = 0
    withdrawals_delayed: int = 0
    igp_lost: int = 0
    igp_delayed: int = 0
    feed_outages: int = 0
    degraded_diagnoses: int = 0
    # -- corruption injection (the measurement plane lied)
    hops_forged: int = 0
    hops_duplicated: int = 0
    loops_injected: int = 0
    reach_bits_flipped: int = 0
    stale_replays: int = 0
    feed_messages_duplicated: int = 0
    feed_messages_misordered: int = 0
    lg_stale_answers: int = 0
    # -- validation screening (what repro.validate detected/did about it)
    invariant_violations: int = 0
    traces_repaired: int = 0
    traces_quarantined: int = 0
    stale_rounds_dropped: int = 0
    feed_messages_repaired: int = 0
    feed_messages_quarantined: int = 0
    lg_paths_quarantined: int = 0
    sensors_excluded: int = 0
    rediagnoses: int = 0
    # -- ensemble verdicts (hitting-set vs empathy agreement, not faults)
    ensemble_agreements: int = 0
    ensemble_partials: int = 0
    ensemble_conflicts: int = 0
    diagnoser_errors: Dict[str, int] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    _COUNTER_FIELDS = (
        "probes_dropped",
        "probes_truncated",
        "hops_anonymized",
        "sensors_down",
        "pairs_discarded",
        "masked_failures",
        "lg_failures",
        "lg_retries",
        "lg_exhausted",
        "lg_rate_limited",
        "withdrawals_lost",
        "withdrawals_delayed",
        "igp_lost",
        "igp_delayed",
        "feed_outages",
        "degraded_diagnoses",
        "hops_forged",
        "hops_duplicated",
        "loops_injected",
        "reach_bits_flipped",
        "stale_replays",
        "feed_messages_duplicated",
        "feed_messages_misordered",
        "lg_stale_answers",
        "invariant_violations",
        "traces_repaired",
        "traces_quarantined",
        "stale_rounds_dropped",
        "feed_messages_repaired",
        "feed_messages_quarantined",
        "lg_paths_quarantined",
        "sensors_excluded",
        "rediagnoses",
        "ensemble_agreements",
        "ensemble_partials",
        "ensemble_conflicts",
    )

    # Ensemble verdict tallies ride the same merge/as_dict machinery but
    # are *observations*, not degradation: an agreeing ensemble must not
    # flip is_degraded().
    _ENSEMBLE_FIELDS = (
        "ensemble_agreements",
        "ensemble_partials",
        "ensemble_conflicts",
    )

    def is_degraded(self) -> bool:
        """True when any fault actually fired on this run."""
        return any(
            getattr(self, name)
            for name in self._COUNTER_FIELDS
            if name not in self._ENSEMBLE_FIELDS
        ) or bool(self.diagnoser_errors)

    def record_ensemble_verdict(self, verdict: str) -> None:
        """One ensemble diagnosis graded its members' agreement."""
        field_name = {
            "agree": "ensemble_agreements",
            "partial": "ensemble_partials",
            "conflict": "ensemble_conflicts",
        }.get(verdict)
        if field_name is None:
            from repro.errors import EmpathyError

            raise EmpathyError(f"unknown ensemble verdict {verdict!r}")
        setattr(self, field_name, getattr(self, field_name) + 1)

    def note(self, message: str) -> None:
        """Record a human-readable degradation event (deduplicated)."""
        if message not in self.notes:
            self.notes.append(message)

    def record_diagnoser_error(self, label: str) -> None:
        """One diagnoser failed on this run's partial inputs."""
        self.degraded_diagnoses += 1
        self.diagnoser_errors[label] = self.diagnoser_errors.get(label, 0) + 1

    def merge(self, other: "DegradationReport") -> None:
        """Fold another report's counters into this one."""
        for name in self._COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for label, count in other.diagnoser_errors.items():
            self.diagnoser_errors[label] = (
                self.diagnoser_errors.get(label, 0) + count
            )
        for message in other.notes:
            self.note(message)

    def as_dict(self) -> Dict[str, int]:
        """Flat counter snapshot (the fields RunnerStats accumulates)."""
        return {name: getattr(self, name) for name in self._COUNTER_FIELDS}
