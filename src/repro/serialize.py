"""JSON serialization for topologies, states, events, tokens and results.

A reproduction is only useful if its artefacts can leave the process:
operators want to archive the topology a diagnosis ran against, replay a
recorded failure scenario, and plot figure series with their own tools.
Everything here is plain-JSON (no pickle): stable across Python versions
and safe to publish.

Round-trip guarantees:

* ``topology_from_dict(topology_to_dict(net))`` reproduces the same ASes,
  routers (ids *and* addresses), links and relationships — address
  determinism is verified during reconstruction and a mismatch raises
  rather than silently renumbering;
* network states, events and link tokens round-trip exactly;
* figure results export as ``{series: [...], summaries: ..., notes: ...}``
  ready for any plotting pipeline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.linkspace import (
    IpLink,
    LinkToken,
    LogicalLink,
    PhysicalLink,
    UhNode,
)
from repro.errors import ReproError
from repro.netsim.addressing import PrefixAllocator
from repro.netsim.events import (
    CompositeEvent,
    Event,
    LinkFailureEvent,
    MisconfigurationEvent,
    RouterFailureEvent,
    WeightChangeEvent,
)
from repro.netsim.topology import (
    ExportFilter,
    Internetwork,
    NetworkState,
    Relationship,
    Tier,
)

__all__ = [
    "topology_to_dict",
    "topology_from_dict",
    "save_topology",
    "load_topology",
    "state_to_dict",
    "state_from_dict",
    "event_to_dict",
    "event_from_dict",
    "token_to_dict",
    "token_from_dict",
    "figure_result_to_dict",
]


# ---------------------------------------------------------------- topology


def topology_to_dict(net: Internetwork) -> Dict[str, Any]:
    """Serialise an internetwork (structure + address plan).

    ``address_plan`` records the allocator parameters so topologies built
    against a non-default plan (e.g. the /24 blocks of
    :mod:`repro.netsim.gen.powerlaw`) reconstruct with the same
    deterministic addresses.
    """
    return {
        "format": "repro-topology-v1",
        "address_plan": net.allocator.plan(),
        "ases": [
            {
                "asn": autsys.asn,
                "name": autsys.name,
                "tier": autsys.tier.value,
                "prefix": autsys.prefix,
            }
            for autsys in net.ases()
        ],
        "routers": [
            {
                "rid": router.rid,
                "asn": router.asn,
                "name": router.name,
                "address": router.address,
            }
            for router in net.routers()
        ],
        "links": [
            {"lid": link.lid, "a": link.a, "b": link.b, "weight": link.weight}
            for link in net.links()
        ],
        "relationships": [
            {
                "a": min(x.asn, y.asn),
                "b": max(x.asn, y.asn),
                "rel": net.relationship(min(x.asn, y.asn), max(x.asn, y.asn)).value,
            }
            for x in net.ases()
            for y in net.ases()
            if x.asn < y.asn and net.relationship(x.asn, y.asn) is not None
        ],
    }


def topology_from_dict(data: Dict[str, Any]) -> Internetwork:
    """Reconstruct an internetwork serialised by :func:`topology_to_dict`."""
    if data.get("format") != "repro-topology-v1":
        raise ReproError(f"unknown topology format {data.get('format')!r}")
    plan = data.get("address_plan")
    if plan is None:
        # Archives written before address_plan existed used the default.
        net = Internetwork()
    else:
        net = Internetwork(
            allocator=PrefixAllocator(
                base=plan["base"],
                as_prefix_len=plan["as_prefix_len"],
                sensor_pool=plan["sensor_pool"],
            )
        )
    for autsys in data["ases"]:
        created = net.add_as(autsys["asn"], autsys["name"], Tier(autsys["tier"]))
        if created.prefix != autsys["prefix"]:
            raise ReproError(
                f"prefix mismatch for AS {autsys['asn']}: allocation is not "
                f"deterministic ({created.prefix} != {autsys['prefix']})"
            )
    for router in sorted(data["routers"], key=lambda r: r["rid"]):
        created = net.add_router(router["asn"], router["name"])
        if created.rid != router["rid"] or created.address != router["address"]:
            raise ReproError(
                f"router reconstruction mismatch for rid {router['rid']}"
            )
    for relationship in data["relationships"]:
        net.set_relationship(
            relationship["a"], relationship["b"], Relationship(relationship["rel"])
        )
    for link in sorted(data["links"], key=lambda l: l["lid"]):
        created = net.add_link(link["a"], link["b"], weight=link["weight"])
        if created.lid != link["lid"]:
            raise ReproError(f"link id mismatch for lid {link['lid']}")
    return net


def save_topology(net: Internetwork, path: Union[str, Path]) -> None:
    """Write a topology to a JSON file."""
    Path(path).write_text(json.dumps(topology_to_dict(net), indent=1))


def load_topology(path: Union[str, Path]) -> Internetwork:
    """Read a topology from a JSON file."""
    return topology_from_dict(json.loads(Path(path).read_text()))


# ------------------------------------------------------------------- state


def state_to_dict(state: NetworkState) -> Dict[str, Any]:
    """Serialise a network state (failures + filters)."""
    return {
        "failed_links": sorted(state.failed_links),
        "failed_routers": sorted(state.failed_routers),
        "weight_overrides": [list(pair) for pair in state.weight_overrides],
        "filters": [
            {
                "link_id": f.link_id,
                "at_router": f.at_router,
                "prefixes": sorted(f.prefixes),
            }
            for f in state.filters
        ],
    }


def state_from_dict(data: Dict[str, Any]) -> NetworkState:
    """Reconstruct a network state."""
    state = NetworkState(
        failed_links=frozenset(data.get("failed_links", ())),
        failed_routers=frozenset(data.get("failed_routers", ())),
        weight_overrides=tuple(
            (lid, weight) for lid, weight in data.get("weight_overrides", ())
        ),
    )
    for f in data.get("filters", ()):
        state = state.with_filter(
            ExportFilter(
                link_id=f["link_id"],
                at_router=f["at_router"],
                prefixes=frozenset(f["prefixes"]),
            )
        )
    return state


# ------------------------------------------------------------------ events


def event_to_dict(event: Event) -> Dict[str, Any]:
    """Serialise a failure event."""
    if isinstance(event, LinkFailureEvent):
        return {"type": "link-failure", "link_ids": list(event.link_ids)}
    if isinstance(event, RouterFailureEvent):
        return {"type": "router-failure", "router_id": event.router_id}
    if isinstance(event, MisconfigurationEvent):
        f = event.export_filter
        return {
            "type": "misconfiguration",
            "link_id": f.link_id,
            "at_router": f.at_router,
            "prefixes": sorted(f.prefixes),
        }
    if isinstance(event, WeightChangeEvent):
        return {
            "type": "weight-change",
            "link_id": event.link_id,
            "new_weight": event.new_weight,
        }
    if isinstance(event, CompositeEvent):
        return {
            "type": "composite",
            "events": [event_to_dict(sub) for sub in event.events],
        }
    raise ReproError(f"cannot serialise event type {type(event).__name__}")


def event_from_dict(data: Dict[str, Any]) -> Event:
    """Reconstruct a failure event."""
    kind = data.get("type")
    if kind == "link-failure":
        return LinkFailureEvent(tuple(data["link_ids"]))
    if kind == "router-failure":
        return RouterFailureEvent(data["router_id"])
    if kind == "misconfiguration":
        return MisconfigurationEvent(
            ExportFilter(
                link_id=data["link_id"],
                at_router=data["at_router"],
                prefixes=frozenset(data["prefixes"]),
            )
        )
    if kind == "weight-change":
        return WeightChangeEvent(
            link_id=data["link_id"], new_weight=data["new_weight"]
        )
    if kind == "composite":
        return CompositeEvent(tuple(event_from_dict(e) for e in data["events"]))
    raise ReproError(f"unknown event type {kind!r}")


# ------------------------------------------------------------------ tokens


def _endpoint_to_json(endpoint) -> Any:
    if isinstance(endpoint, str):
        return endpoint
    return {
        "uh": True,
        "src": endpoint.src,
        "dst": endpoint.dst,
        "epoch": endpoint.epoch,
        "index": endpoint.index,
    }


def _endpoint_from_json(data) -> Any:
    if isinstance(data, str):
        return data
    return UhNode(
        src=data["src"], dst=data["dst"], epoch=data["epoch"], index=data["index"]
    )


def token_to_dict(token: Union[LinkToken, PhysicalLink]) -> Dict[str, Any]:
    """Serialise any link token."""
    if isinstance(token, LogicalLink):
        return {
            "type": "logical",
            "src": token.src,
            "dst": token.dst,
            "tag": token.tag,
        }
    if isinstance(token, IpLink):
        return {
            "type": "ip",
            "src": _endpoint_to_json(token.src),
            "dst": _endpoint_to_json(token.dst),
        }
    if isinstance(token, PhysicalLink):
        return {
            "type": "physical",
            "lo": _endpoint_to_json(token.lo),
            "hi": _endpoint_to_json(token.hi),
        }
    raise ReproError(f"cannot serialise token type {type(token).__name__}")


def token_from_dict(data: Dict[str, Any]) -> Union[LinkToken, PhysicalLink]:
    """Reconstruct a link token."""
    kind = data.get("type")
    if kind == "logical":
        return LogicalLink(src=data["src"], dst=data["dst"], tag=data["tag"])
    if kind == "ip":
        return IpLink(
            src=_endpoint_from_json(data["src"]),
            dst=_endpoint_from_json(data["dst"]),
        )
    if kind == "physical":
        return PhysicalLink(
            lo=_endpoint_from_json(data["lo"]),
            hi=_endpoint_from_json(data["hi"]),
        )
    raise ReproError(f"unknown token type {kind!r}")


# ----------------------------------------------------------------- figures


def figure_result_to_dict(result) -> Dict[str, Any]:
    """Export a figure result for external plotting."""
    return {
        "figure_id": result.figure_id,
        "title": result.title,
        "series": [
            {
                "name": series.name,
                "x_label": series.x_label,
                "y_label": series.y_label,
                "points": [[x, y] for x, y in series.points],
            }
            for series in result.series
        ],
        "summaries": result.summaries,
        "notes": list(result.notes),
    }
