"""Per-run accounting of what validation detected and did about it.

Mirrors the design of :class:`~repro.faults.DegradationReport`: screening
is only trustworthy when it is legible.  The report keeps the full
violation list plus per-invariant fixup/quarantine counters; the
:class:`~repro.validate.engine.Validator` additionally mirrors the
totals onto the run's degradation report as it screens, so they travel
the existing RunRecord → RunnerStats → ``-- runner stats`` path
unchanged.  ``traces_quarantined`` and ``stale_rounds_dropped`` are
disjoint: a stale-epoch record counts only in the latter, so summed
counters account for each dropped record exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.validate.invariants import Violation

__all__ = ["ValidationReport"]


@dataclass
class ValidationReport:
    """What one run's input screening found under one policy.

    ``violations`` is every invariant violation detected (under
    ``strict`` at most one — the raise stops the run); ``repairs`` and
    ``quarantines`` count *fixups applied* and *records dropped* keyed
    by invariant id.  A repaired record may contribute several fixups;
    a quarantined record counts once, under the first violated
    invariant.
    """

    policy: str
    violations: List[Violation] = field(default_factory=list)
    repairs: Dict[str, int] = field(default_factory=dict)
    quarantines: Dict[str, int] = field(default_factory=dict)
    traces_repaired: int = 0
    traces_quarantined: int = 0
    stale_rounds_dropped: int = 0
    feed_messages_repaired: int = 0
    feed_messages_quarantined: int = 0
    lg_paths_quarantined: int = 0

    def record_violations(self, violations) -> None:
        self.violations.extend(violations)

    def record_repair(self, invariant: str, count: int = 1) -> None:
        self.repairs[invariant] = self.repairs.get(invariant, 0) + count

    def record_quarantine(self, invariant: str, count: int = 1) -> None:
        self.quarantines[invariant] = (
            self.quarantines.get(invariant, 0) + count
        )

    def clean(self) -> bool:
        """True when screening found nothing wrong."""
        return not self.violations

    def merge(self, other: "ValidationReport") -> None:
        """Fold another report's findings into this one."""
        self.violations.extend(other.violations)
        for invariant, count in other.repairs.items():
            self.record_repair(invariant, count)
        for invariant, count in other.quarantines.items():
            self.record_quarantine(invariant, count)
        self.traces_repaired += other.traces_repaired
        self.traces_quarantined += other.traces_quarantined
        self.stale_rounds_dropped += other.stale_rounds_dropped
        self.feed_messages_repaired += other.feed_messages_repaired
        self.feed_messages_quarantined += other.feed_messages_quarantined
        self.lg_paths_quarantined += other.lg_paths_quarantined
