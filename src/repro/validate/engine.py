"""The validation policy engine: strict, repair, or quarantine.

A :class:`Validator` is created per diagnosis run and threaded through
the collector seams (snapshot assembly, control-plane feed, LG lookups).
Every screened record either passes, is canonically repaired, or is
dropped — according to one policy for the whole run:

* ``strict`` — raise a typed :class:`~repro.errors.ValidationError`
  naming the record and the invariant.  For CI and for debugging a
  corrupted archive: no lying record gets past the front door.
* ``repair`` — apply the canonical fixups of
  :mod:`repro.validate.repair`; records whose violation has no sound
  repair (a stale epoch tag, an LG answer from the wrong table) are
  quarantined instead.
* ``quarantine`` — drop every offending record and diagnose
  best-effort on what remains, like PR 3's omission handling.

Every decision is counted on the validator's
:class:`~repro.validate.report.ValidationReport` and, when one is
attached, eagerly on the run's
:class:`~repro.faults.DegradationReport` — the totals travel the
existing RunnerStats path and surface in ``-- runner stats``.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

from repro.core.pathset import PathStore, ProbePath
from repro.errors import MeasurementError, ValidationError
from repro.faults import DegradationReport
from repro.validate.invariants import (
    LG_PATH,
    TRACE_EPOCH,
    Violation,
    check_feed,
    check_lg_path,
    check_probe_path,
    check_rounds,
)
from repro.validate.repair import repair_feed, repair_probe_path
from repro.validate.report import ValidationReport

__all__ = ["STRICT", "REPAIR", "QUARANTINE", "POLICIES", "Validator"]

STRICT = "strict"
REPAIR = "repair"
QUARANTINE = "quarantine"
POLICIES = (STRICT, REPAIR, QUARANTINE)


class Validator:
    """Screens diagnosis inputs under one policy, with full accounting."""

    def __init__(
        self,
        policy: str = QUARANTINE,
        degradation: Optional[DegradationReport] = None,
    ) -> None:
        if policy not in POLICIES:
            raise MeasurementError(
                f"unknown validation policy {policy!r}; "
                f"expected one of {', '.join(POLICIES)}"
            )
        self.policy = policy
        self.degradation = degradation
        self.report = ValidationReport(policy)

    # ---- shared bookkeeping

    def _found(self, violations: Sequence[Violation]) -> None:
        """Record detections (and raise, under strict)."""
        self.report.record_violations(violations)
        if self.degradation is not None:
            self.degradation.invariant_violations += len(violations)
        if self.policy == STRICT and violations:
            first = violations[0]
            raise ValidationError(first.invariant, first.record, first.detail)

    # ---- probe paths / measurement rounds

    def screen_store(
        self,
        store: PathStore,
        asn_of: Callable[[str], Optional[int]],
        expected_epoch: str,
    ) -> PathStore:
        """Screen one measurement round path-by-path.

        Returns the store itself when every path is clean; otherwise a
        new store holding the surviving (possibly repaired) paths.
        """
        kept = []
        changed = False
        for path in store.paths():
            violations = check_probe_path(path, asn_of, expected_epoch)
            if not violations:
                kept.append(path)
                continue
            self._found(violations)
            changed = True
            stale = any(v.invariant == TRACE_EPOCH for v in violations)
            if stale:
                # No sound repair for a record from the wrong epoch:
                # quarantined under every non-strict policy.
                self.report.stale_rounds_dropped += 1
                self.report.record_quarantine(TRACE_EPOCH)
                if self.degradation is not None:
                    self.degradation.stale_rounds_dropped += 1
                    self.degradation.note("stale measurement round detected")
                continue
            if self.policy == REPAIR:
                repaired, fixups = repair_probe_path(path, asn_of)
                self.report.traces_repaired += 1
                for fixup in fixups:
                    self.report.record_repair(fixup)
                if self.degradation is not None:
                    self.degradation.traces_repaired += 1
                kept.append(repaired)
            else:
                self.report.traces_quarantined += 1
                self.report.record_quarantine(violations[0].invariant)
                if self.degradation is not None:
                    self.degradation.traces_quarantined += 1
        if not changed:
            return store
        rebuilt = PathStore()
        for path in kept:
            rebuilt.add(path)
        return rebuilt

    def screen_rounds(
        self, before: PathStore, after: PathStore
    ) -> Tuple[PathStore, PathStore]:
        """Enforce the cross-round invariants (pair sets, T- baseline).

        Under repair/quarantine the only sound fix is the one the
        collector already applies to omission faults: drop the pair
        from both rounds and count it.
        """
        violations = check_rounds(before, after)
        if not violations:
            return before, after
        self._found(violations)
        bad_pairs = {
            pair
            for pair in before.pairs()
            if not before.get(pair).reached
        }
        new_before, new_after = PathStore(), PathStore()
        for pair in before.pairs():
            if pair in bad_pairs or pair not in after:
                continue
            new_before.add(before.get(pair))
            new_after.add(after.get(pair))
        discarded = len(
            set(before.pairs()) | set(after.pairs())
        ) - len(new_before)
        if self.degradation is not None:
            self.degradation.pairs_discarded += discarded
        return new_before, new_after

    # ---- control-plane feed streams

    def screen_feed(self, messages: Sequence, kind: str) -> Tuple:
        """Screen one feed stream (IGP link-downs or BGP withdrawals)."""
        violations = check_feed(messages, kind)
        if not violations:
            return tuple(messages)
        self._found(violations)
        if self.policy == REPAIR:
            repaired, fixups = repair_feed(messages)
            affected = len(violations)
            self.report.feed_messages_repaired += affected
            for fixup in fixups:
                self.report.record_repair(fixup)
            if self.degradation is not None:
                self.degradation.feed_messages_repaired += affected
            return repaired
        kept = []
        seen = set()
        highest = None
        dropped = 0
        for message in messages:
            seq = getattr(message, "seq", -1)
            sequenced = seq is not None and seq >= 0
            if message in seen or (
                sequenced and highest is not None and seq < highest
            ):
                dropped += 1
                continue
            seen.add(message)
            if sequenced:
                highest = seq
            kept.append(message)
        self.report.feed_messages_quarantined += dropped
        for violation in violations:
            self.report.record_quarantine(violation.invariant)
        if self.degradation is not None:
            self.degradation.feed_messages_quarantined += dropped
        return tuple(kept)

    # ---- Looking Glass answers

    def screen_lg_path(
        self,
        asn: int,
        path: Optional[Tuple[int, ...]],
        dst_address: str,
        epoch: str,
    ) -> Optional[Tuple[int, ...]]:
        """Screen one LG answer; a bad path degrades to "no answer".

        There is no sound repair for a stale Looking Glass answer (the
        true current path is simply unknown), so both non-strict
        policies quarantine: to ND-LG the AS looks like one with no
        public Looking Glass — exactly how PR 3 degrades a flaky LG.
        """
        if path is None:
            return None
        violations = check_lg_path(asn, path, dst_address, epoch)
        if not violations:
            return path
        self._found(violations)
        self.report.lg_paths_quarantined += 1
        self.report.record_quarantine(LG_PATH)
        if self.degradation is not None:
            self.degradation.lg_paths_quarantined += 1
        return None
