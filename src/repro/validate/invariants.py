"""Typed invariants over diagnosis inputs, and their checkers.

Every invariant has a stable string id (``trace-loop``, ``feed-order``,
...) used three ways: naming the violation in a strict-mode
:class:`~repro.errors.ValidationError`, keying the per-fixup accounting
of the :class:`~repro.validate.report.ValidationReport`, and labelling
rows of the policy matrix in ``docs/robustness.md``.  Checkers are pure
functions returning :class:`Violation` tuples — policy (raise, repair,
drop) lives in :mod:`repro.validate.engine`, not here.

The invariants are deliberately *local*: each one is decidable from the
record plus the IP-to-AS mapping, so a checker never needs simulator
ground truth — exactly what a real NOC-side validator would have.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.core.pathset import PathStore, ProbePath

__all__ = [
    "INVARIANTS",
    "TRACE_DUP",
    "TRACE_LOOP",
    "TRACE_UNRESOLVED",
    "TRACE_REACH_BIT",
    "TRACE_EPOCH",
    "ROUND_PAIRS",
    "ROUND_BASELINE",
    "FEED_DUP",
    "FEED_ORDER",
    "LG_PATH",
    "Violation",
    "describe_path",
    "check_probe_path",
    "check_rounds",
    "check_feed",
    "check_lg_path",
]

#: Consecutive identical identified hops (a duplicated hop record).
TRACE_DUP = "trace-dup"
#: A non-adjacent revisit of an identified hop (a routing loop).
TRACE_LOOP = "trace-loop"
#: An identified hop address that maps to no topology router.
TRACE_UNRESOLVED = "trace-unresolved"
#: ``reached`` flag inconsistent with the hop sequence: the trace ends at
#: the destination sensor yet claims the probe did not reach.
TRACE_REACH_BIT = "trace-reach-bit"
#: A record tagged with a different epoch than the round it sits in —
#: the clock-skew / stale-replay fingerprint of §6.
TRACE_EPOCH = "trace-epoch"
#: The T- and T+ rounds cover different probe pair sets.
ROUND_PAIRS = "round-pairs"
#: A T- probe that did not reach (no usable baseline for the pair).
ROUND_BASELINE = "round-baseline"
#: A control-plane feed message observed more than once.
FEED_DUP = "feed-dup"
#: Feed sequence numbers not monotonically increasing.
FEED_ORDER = "feed-order"
#: A Looking Glass AS path that does not start at the queried AS or
#: revisits an AS (inconsistent with any real BGP best path).
LG_PATH = "lg-path"

INVARIANTS = (
    TRACE_DUP,
    TRACE_LOOP,
    TRACE_UNRESOLVED,
    TRACE_REACH_BIT,
    TRACE_EPOCH,
    ROUND_PAIRS,
    ROUND_BASELINE,
    FEED_DUP,
    FEED_ORDER,
    LG_PATH,
)


@dataclass(frozen=True)
class Violation:
    """One invariant violated by one record.

    ``invariant`` is a stable id from :data:`INVARIANTS`; ``record``
    identifies the screened record the way an operator would name it
    (``"probe 10.0.0.1->10.0.9.2 [post]"``); ``detail`` pinpoints the
    offending element within it.
    """

    invariant: str
    record: str
    detail: str = ""


def describe_path(path: ProbePath, expected_epoch: Optional[str] = None) -> str:
    """Canonical record label for a probe path."""
    epoch = expected_epoch if expected_epoch is not None else path.epoch
    return f"probe {path.src}->{path.dst} [{epoch}]"


def check_probe_path(
    path: ProbePath,
    asn_of: Callable[[str], Optional[int]],
    expected_epoch: Optional[str] = None,
) -> Tuple[Violation, ...]:
    """All per-record invariant violations of one probe path.

    Checks epoch consistency, hop resolvability, duplicated hops,
    routing loops and the reachability bit.  UH hops are skipped by the
    address checks: a star is an *absence* of data, not a lie, and
    carries per-position identity by construction.
    """
    record = describe_path(path, expected_epoch)
    violations = []
    if expected_epoch is not None and path.epoch != expected_epoch:
        violations.append(
            Violation(
                TRACE_EPOCH,
                record,
                f"tagged epoch {path.epoch!r}, round is {expected_epoch!r}",
            )
        )
    seen = {}
    previous = None
    for index, hop in enumerate(path.hops):
        if not isinstance(hop, str):
            previous = hop
            continue
        if asn_of(hop) is None:
            violations.append(
                Violation(
                    TRACE_UNRESOLVED,
                    record,
                    f"hop {index} address {hop} resolves to no router",
                )
            )
        if hop == previous:
            violations.append(
                Violation(TRACE_DUP, record, f"hop {index} repeats {hop}")
            )
        elif hop in seen:
            violations.append(
                Violation(
                    TRACE_LOOP,
                    record,
                    f"hop {index} revisits {hop} (first seen at {seen[hop]})",
                )
            )
        if hop not in seen:
            seen[hop] = index
        previous = hop
    if not path.reached and path.hops[-1] == path.dst and len(path.hops) > 1:
        violations.append(
            Violation(
                TRACE_REACH_BIT,
                record,
                "trace ends at the destination sensor yet reached=False",
            )
        )
    return tuple(violations)


def check_rounds(
    before: PathStore, after: PathStore
) -> Tuple[Violation, ...]:
    """Cross-round invariants: equal pair sets and a reached T- baseline."""
    violations = []
    before_pairs = set(before.pairs())
    after_pairs = set(after.pairs())
    for pair in sorted(before_pairs ^ after_pairs):
        where = "T-" if pair in before_pairs else "T+"
        violations.append(
            Violation(
                ROUND_PAIRS,
                f"pair {pair[0]}->{pair[1]}",
                f"measured only in the {where} round",
            )
        )
    for pair in before.pairs():
        if not before.get(pair).reached:
            violations.append(
                Violation(
                    ROUND_BASELINE,
                    f"pair {pair[0]}->{pair[1]}",
                    "T- probe did not reach; no baseline for this pair",
                )
            )
    return tuple(violations)


def check_feed(
    messages: Sequence, kind: str = "feed"
) -> Tuple[Violation, ...]:
    """Feed-stream invariants: no duplicates, sequence numbers monotonic.

    ``messages`` are frozen observation records carrying an optional
    ``seq`` field (``-1`` = unsequenced; ordering is only checked across
    sequenced messages).  Duplicates are full-record duplicates — a real
    collector deduplicates on message identity, and the corruption mode
    replays the identical record.
    """
    violations = []
    seen = set()
    highest = None
    for position, message in enumerate(messages):
        record = f"{kind} message #{position}"
        if message in seen:
            violations.append(
                Violation(FEED_DUP, record, f"duplicate of {message}")
            )
            continue
        seen.add(message)
        seq = getattr(message, "seq", -1)
        if seq is not None and seq >= 0:
            if highest is not None and seq < highest:
                violations.append(
                    Violation(
                        FEED_ORDER,
                        record,
                        f"seq {seq} arrived after seq {highest}",
                    )
                )
            else:
                highest = seq
    return tuple(violations)


def check_lg_path(
    asn: int,
    path: Sequence[int],
    dst_address: str,
    epoch: str,
) -> Tuple[Violation, ...]:
    """Looking Glass answer invariants.

    A genuine BGP best path reported by AS ``asn`` starts at ``asn``
    itself and never revisits an AS (BGP's loop prevention guarantees
    as much for any honestly-reported path).  A stale or cache-served
    answer breaks one of the two.
    """
    record = f"LG answer from AS{asn} for {dst_address} [{epoch}]"
    violations = []
    if not path:
        violations.append(Violation(LG_PATH, record, "empty AS path"))
        return tuple(violations)
    if path[0] != asn:
        violations.append(
            Violation(
                LG_PATH,
                record,
                f"path starts at AS{path[0]}, not the queried AS{asn}",
            )
        )
    seen = set()
    for hop_asn in path:
        if hop_asn in seen:
            violations.append(
                Violation(LG_PATH, record, f"path revisits AS{hop_asn}")
            )
            break
        seen.add(hop_asn)
    return tuple(violations)
