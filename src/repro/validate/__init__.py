"""Input validation, repair and quarantine for diagnosis inputs.

PR 3 made the pipeline survive *missing* data; this package makes it
survive *lying* data — forged hops, injected loops, stale rounds
replayed as current, flipped reachability bits, duplicated or
misordered feed messages, Looking Glass answers served from the wrong
table.  Every diagnosis input is screened against typed invariants
(:mod:`repro.validate.invariants`) before any algorithm sees it, under
one of three per-run policies:

* :data:`STRICT` — raise :class:`~repro.errors.ValidationError` naming
  record and invariant;
* :data:`REPAIR` — apply the canonical deterministic fixups of
  :mod:`repro.validate.repair`, with per-fixup accounting;
* :data:`QUARANTINE` — drop offending records and diagnose best-effort.

The corruption modes that exercise this layer live in
:mod:`repro.faults` (:data:`~repro.faults.CORRUPTION_MODES`), driven by
the same seeded plan machinery as the omission faults so parallel and
serial sweeps corrupt — and screen — bit-identically.
"""

from repro.validate.engine import (
    POLICIES,
    QUARANTINE,
    REPAIR,
    STRICT,
    Validator,
)
from repro.validate.invariants import (
    FEED_DUP,
    FEED_ORDER,
    INVARIANTS,
    LG_PATH,
    ROUND_BASELINE,
    ROUND_PAIRS,
    TRACE_DUP,
    TRACE_EPOCH,
    TRACE_LOOP,
    TRACE_REACH_BIT,
    TRACE_UNRESOLVED,
    Violation,
    check_feed,
    check_lg_path,
    check_probe_path,
    check_rounds,
)
from repro.validate.repair import repair_feed, repair_probe_path
from repro.validate.report import ValidationReport

__all__ = [
    "POLICIES",
    "STRICT",
    "REPAIR",
    "QUARANTINE",
    "Validator",
    "INVARIANTS",
    "TRACE_DUP",
    "TRACE_LOOP",
    "TRACE_UNRESOLVED",
    "TRACE_REACH_BIT",
    "TRACE_EPOCH",
    "ROUND_PAIRS",
    "ROUND_BASELINE",
    "FEED_DUP",
    "FEED_ORDER",
    "LG_PATH",
    "Violation",
    "check_feed",
    "check_lg_path",
    "check_probe_path",
    "check_rounds",
    "repair_feed",
    "repair_probe_path",
    "ValidationReport",
]
