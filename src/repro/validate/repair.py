"""Canonical, deterministic fixups for repairable invariant violations.

Repairs are pure functions of the record and the IP-to-AS mapping — no
randomness, no ambient state — so a repaired sweep is reproducible and
``repair`` is idempotent (``repair(repair(x)) == repair(x)``, property-
tested in ``tests/validate/``).  Each repair returns the fixed record
plus the tuple of invariant ids it actually applied, feeding the
per-fixup accounting of :class:`~repro.validate.report.ValidationReport`.

The probe-path pipeline runs in a fixed order chosen so later stages
cannot re-introduce earlier violations:

1. drop unresolvable identified hops (never position 0 — the source
   sensor vouches for its own address);
2. collapse consecutive duplicate hops (dropping a forged hop between
   two copies of a router exposes the pair as adjacent);
3. truncate at the first loop revisit (keep the prefix before the hop
   that re-enters a visited router);
4. re-derive the reachability bit from the hops (`reached` iff the
   trace ends at the destination sensor).

Invariants with no sound repair (a stale epoch tag, an LG answer from
the wrong table) are *not* handled here; the engine quarantines those
records even under the ``repair`` policy.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.linkspace import Endpoint
from repro.core.pathset import ProbePath
from repro.validate.invariants import (
    FEED_DUP,
    FEED_ORDER,
    TRACE_DUP,
    TRACE_LOOP,
    TRACE_REACH_BIT,
    TRACE_UNRESOLVED,
)

__all__ = ["repair_probe_path", "repair_feed"]


def repair_probe_path(
    path: ProbePath, asn_of: Callable[[str], Optional[int]]
) -> Tuple[ProbePath, Tuple[str, ...]]:
    """Repair one probe path; returns (fixed path, fixups applied).

    The returned path satisfies every repairable per-record invariant;
    if nothing needed fixing the input object is returned unchanged.
    Repair can lose information — a loop truncation may cut the tail
    that confirmed reachability — but it never invents any: every
    surviving hop was reported, in its reported order.
    """
    fixups: List[str] = []
    hops: List[Endpoint] = []
    for index, hop in enumerate(path.hops):
        if (
            index > 0
            and isinstance(hop, str)
            and asn_of(hop) is None
        ):
            if TRACE_UNRESOLVED not in fixups:
                fixups.append(TRACE_UNRESOLVED)
            continue
        hops.append(hop)
    collapsed: List[Endpoint] = []
    for hop in hops:
        if collapsed and isinstance(hop, str) and hop == collapsed[-1]:
            if TRACE_DUP not in fixups:
                fixups.append(TRACE_DUP)
            continue
        collapsed.append(hop)
    seen = set()
    truncated: List[Endpoint] = []
    for hop in collapsed:
        if isinstance(hop, str):
            if hop in seen:
                fixups.append(TRACE_LOOP)
                break
            seen.add(hop)
        truncated.append(hop)
    if (path.hops[-1] == path.dst) != path.reached:
        # The bit lied about the trace as reported — distinct from a
        # reachability change that is merely a consequence of truncation.
        fixups.append(TRACE_REACH_BIT)
    reached = truncated[-1] == path.dst
    if not fixups:
        return path, ()
    return (
        ProbePath(
            src=path.src,
            dst=path.dst,
            hops=tuple(truncated),
            reached=reached,
            epoch=path.epoch,
        ),
        tuple(fixups),
    )


def repair_feed(messages: Sequence) -> Tuple[Tuple, Tuple[str, ...]]:
    """Repair one feed stream; returns (fixed messages, fixups applied).

    Deduplicates on full-record identity (first occurrence wins) and
    restores monotonic order with a stable sort of the *sequenced*
    messages among themselves — unsequenced messages (``seq < 0``) have
    nothing sound to sort by and keep their arrival positions, exactly
    the subset the ``feed-order`` invariant skips.
    """
    fixups: List[str] = []
    seen = set()
    deduped = []
    for message in messages:
        if message in seen:
            if FEED_DUP not in fixups:
                fixups.append(FEED_DUP)
            continue
        seen.add(message)
        deduped.append(message)

    def sequenced(message) -> bool:
        seq = getattr(message, "seq", -1)
        return seq is not None and seq >= 0

    slots = [i for i, m in enumerate(deduped) if sequenced(m)]
    ordered = sorted((deduped[i] for i in slots), key=lambda m: m.seq)
    if any(deduped[i] != m for i, m in zip(slots, ordered)):
        fixups.append(FEED_ORDER)
        for i, m in zip(slots, ordered):
            deduped[i] = m
    return tuple(deduped), tuple(fixups)
