"""Top-level command line: generate topologies, inject failures, diagnose.

Examples::

    # Generate and archive a research-Internet topology
    python -m repro topology --seed 42 --out topo.json

    # Run one randomised scenario end to end and print the diagnosis
    python -m repro diagnose --kind link-2 --sensors 10 --seed 7

    # Archive the sampled scenario, then replay it later (e.g. on another
    # machine, or after changing the algorithms)
    python -m repro diagnose --kind misconfig --save-scenario case.json
    python -m repro replay case.json --algorithms nd-edge

    # Sweep topology sizes in parallel worker processes (§5.3 study)
    python -m repro scaling --workers 0

    # Sweep measurement fault rates and plot each algorithm's decay,
    # checkpointing every completed placement so the sweep can resume
    python -m repro degradation --rates 0 0.1 0.2 0.3 0.4 0.5 \
        --journal sweep.journal --resume

    # Replay a deterministic event stream through the online engine and
    # report throughput, backpressure and episode-diagnosis latency
    python -m repro stream --rates 0 0.1 --window 4 --policy quarantine

    # Replay a seeded long-horizon monitoring scenario and print the
    # health timeline, bad intervals and blocked-vs-failed verdicts
    python -m repro monitor --scenario mixed-ops --ticks 2000 --seed 7

    # Regenerate evaluation figures (delegates to repro.experiments)
    python -m repro.experiments --figure 6
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from pathlib import Path

from repro.diagnosers import DIAGNOSER_NAMES, make_diagnoser, make_diagnosers
from repro.errors import (
    ControlPlaneFeedError,
    EmpathyError,
    FaultInjectionError,
    MonitorError,
    StreamError,
    TopologyError,
    ValidationError,
)
from repro.experiments.runner import ground_truth_links, make_session, run_scenario
from repro.experiments.scenarios import SCENARIO_KINDS
from repro.measurement.collector import collect_control_plane, take_snapshot
from repro.measurement.sensors import deploy_sensors, random_stub_placement
from repro.netsim.gen.internet import research_internet
from repro.netsim.gen.powerlaw import powerlaw_internet
from repro.netsim.simulator import Simulator
from repro.netsim.topology import NetworkState
from repro.serialize import (
    event_from_dict,
    event_to_dict,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.validate import POLICIES


def _cmd_topology(args: argparse.Namespace) -> int:
    if args.style == "powerlaw":
        topo = powerlaw_internet(args.ases, seed=args.seed)
    else:
        topo = research_internet(
            n_tier2=args.tier2, n_stub=args.stubs, seed=args.seed
        )
    save_topology(topo.net, args.out)
    print(
        f"wrote {args.out}: {topo.net.num_ases} ASes, "
        f"{topo.net.num_routers} routers, {topo.net.num_links} links "
        f"(seed {args.seed})"
    )
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    topo = research_internet(seed=args.topo_seed)
    session = make_session(
        topo, random_stub_placement(topo, args.sensors, rng), rng
    )
    scenario = session.sampler.sample(args.kind)
    print(f"scenario: {scenario.event.describe(session.net)}")

    diagnosers = make_diagnosers(
        # nd-lg needs blocked ASes + LGs; see the figures CLI
        [name for name in args.algorithms if name != "nd-lg"]
    )
    record = run_scenario(
        session, scenario, diagnosers, asx=topo.core_asns[0]
    )
    truth = sorted(map(str, ground_truth_links(session.net, scenario.event)))
    print(f"ground truth: {', '.join(truth)}")
    print(
        f"observations: {record.n_failed_pairs} failed pairs, "
        f"{record.n_rerouted_pairs} rerouted, D(G)={record.diagnosability:.3f}"
    )
    for label, score in record.scores.items():
        print(
            f"  {label:10s} sensitivity={score.link.sensitivity:.2f} "
            f"specificity={score.link.specificity:.3f} "
            f"|H|={score.physical_hypothesis_size} "
            f"explained={score.fully_explained}"
        )
    if args.save_scenario:
        archive = {
            "format": "repro-scenario-v1",
            "topology": topology_to_dict(session.net),
            "sensor_routers": [s.router_id for s in session.sensors],
            "event": event_to_dict(scenario.event),
            "asx": topo.core_asns[0],
        }
        Path(args.save_scenario).write_text(json.dumps(archive))
        print(f"scenario archived to {args.save_scenario}")
    return 0


def _size_pair(text: str) -> tuple:
    """argparse type for --sizes: ``T2xSTUB`` -> ``(tier2, stubs)``.

    A bare integer (``5000``) is accepted too and means a total AS count —
    only meaningful with ``--topology powerlaw``.
    """
    if "x" not in text.lower():
        try:
            total = int(text)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"expected T2xSTUB or a total AS count, got {text!r}"
            ) from None
        if total < 1:
            raise argparse.ArgumentTypeError(f"sizes must be >= 1, got {text!r}")
        return total
    try:
        tier2, stubs = (int(part) for part in text.lower().split("x"))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected T2xSTUB (e.g. 22x140), got {text!r}"
        ) from None
    if tier2 < 1 or stubs < 1:
        raise argparse.ArgumentTypeError(f"sizes must be >= 1, got {text!r}")
    return (tier2, stubs)


def _worker_count(text: str) -> int:
    """argparse type for --workers: non-negative int (0 = all cores)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 = all cores)")
    return value


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.experiments.scaling import DEFAULT_SIZES, render_scaling, scaling_sweep

    sizes = tuple(args.sizes) if args.sizes else DEFAULT_SIZES
    points = scaling_sweep(
        sizes=sizes,
        n_sensors=args.sensors,
        failures=args.failures,
        seed=args.seed,
        workers=args.workers,
        topology=args.topology,
    )
    print(render_scaling(points))
    return 0


def _fault_rate(text: str) -> float:
    """argparse type for --rates: probability in [0, 1]."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number, got {text!r}"
        ) from None
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(
            f"fault rate must be within [0, 1], got {value}"
        )
    return value


def _cmd_degradation(args: argparse.Namespace) -> int:
    from repro.experiments.figures import degradation
    from repro.experiments.figures.base import FigureConfig

    config = FigureConfig(
        seed=args.seed,
        topo_seed=args.topo_seed,
        placements=args.placements,
        failures_per_placement=args.failures,
        n_sensors=args.sensors,
        workers=args.workers,
    )
    validation = args.validation
    if args.corrupt and validation is None:
        validation = "quarantine"
    result = degradation.run(
        config,
        fault_rates=tuple(args.rates),
        job_timeout=args.job_timeout,
        journal=args.journal,
        resume=args.resume,
        corrupt=args.corrupt,
        validation=validation,
    )
    print(result.render())
    return 0


def _interrupted(command: str, journal) -> int:
    """One-line SIGINT epilogue for long-running stream/monitor runs.

    Reports already emitted were durably appended to the journal as they
    happened, so the interrupt loses no completed work; exit 130 is the
    conventional fatal-SIGINT status.
    """
    if journal:
        hint = (
            f"resume with: python -m repro {command} ... "
            f"--journal {journal} --resume"
        )
    else:
        hint = f"re-run with --journal PATH to make {command} runs resumable"
    print(f"interrupted — journal checkpoints are durable; {hint}",
          file=sys.stderr)
    return 130


def _cmd_stream(args: argparse.Namespace) -> int:
    import os

    from repro.experiments.journal import RunJournal
    from repro.experiments.report import render_stream_report
    from repro.stream import (
        ReplayConfig,
        TenantConfig,
        make_replay_setup,
        run_stream_replay,
        source_tenant_of,
    )

    if args.dlq_inspect:
        from repro.stream import load_dead_letters

        if not args.dlq:
            print("--dlq-inspect needs --dlq PATH")
            return 2
        entries = load_dead_letters(args.dlq)
        print(f"=== dead letters ({len(entries)} entries) ===")
        for index, entry in enumerate(entries):
            shard = entry.get("shard")
            where = f"shard {shard}" if shard is not None else "unsharded"
            if entry["kind"] == "episode":
                print(
                    f"  {index}: episode {entry['episode_id']} "
                    f"{entry['transition']} @tick {entry['tick']} "
                    f"({len(entry['pairs'])} pairs, {where}) — "
                    f"{entry['reason']}"
                )
            else:
                print(
                    f"  {index}: event {entry['event'].get('type')} "
                    f"@tick {entry['tick']} ({where}) — {entry['reason']}"
                )
        return 0

    workers = args.workers or (os.cpu_count() or 1)
    tenants = tenant_of = None
    if args.tenants > 0:
        tenants = tuple(
            TenantConfig(f"tenant-{index}", rate=args.tenant_rate)
            for index in range(args.tenants)
        )
        tenant_of = source_tenant_of(tenants)
    for rate in args.rates:
        setup = make_replay_setup(
            seed=args.seed,
            topo_seed=args.topo_seed,
            n_tier2=args.tier2,
            n_stub=args.stubs,
            n_sensors=args.sensors,
            blocked_fraction=args.blocked_fraction,
            algorithms=tuple(args.algorithms),
        )
        config = ReplayConfig(
            kind=args.kind,
            episodes=args.episodes,
            incident_rounds=args.incident_rounds,
            recovery_rounds=args.recovery_rounds,
            fault_rate=rate,
            corrupt=args.corrupt,
            seed=args.seed,
            chaos_rate=args.chaos,
        )
        journal = cached = None
        if args.journal:
            fingerprint = {
                "format": "repro-stream-journal",
                "config": config,
                "policy": args.policy,
                "window": args.window,
            }
            journal = RunJournal(f"{args.journal}.rate{rate}", fingerprint)
            if args.resume:
                cached = journal.load_completed()
        try:
            result = run_stream_replay(
                setup,
                config,
                policy=args.policy,
                window_width=args.window,
                workers=workers,
                shards=args.shards,
                tenants=tenants,
                tenant_of=tenant_of,
                journal=journal,
                cached_reports=cached,
                save_log=args.save_log,
                supervise=bool(args.dlq),
                dlq_path=args.dlq,
            )
        except KeyboardInterrupt:
            return _interrupted("stream", args.journal)
        print(f"=== stream replay @ fault rate {rate} "
              f"(policy={args.policy}, window={args.window}"
              + (f", chaos={args.chaos}" if args.chaos else "")
              + ") ===")
        for index, episode in enumerate(result.episodes):
            print(f"injected episode {index}: {episode.description} "
                  f"[ticks {episode.baseline_tick}-{episode.last_tick}]")
        for report in result.reports:
            verdicts = "  ".join(
                f"{d.algorithm}:|H|={d.hypothesis_size}"
                + (f"[{d.verdict}]" if d.verdict else "")
                + ("!" if d.error else "")
                for d in report.diagnoses
            ) or "(episode summary only)"
            print(
                f"  report {report.report_index}: episode "
                f"{report.episode_id} {report.trigger} @tick {report.tick} "
                f"(+{report.latency_ticks} latency, "
                f"{len(report.pairs)} pairs)  {verdicts}"
            )
        print(render_stream_report(result))
    return 0


def _cmd_crossval(args: argparse.Namespace) -> int:
    from repro.experiments.crossval import CrossvalConfig, run_crossval

    config = CrossvalConfig(
        seed=args.seed,
        topo_seed=args.topo_seed,
        placements=args.placements,
        failures_per_kind=args.failures,
        n_sensors=args.sensors,
        kinds=tuple(args.kinds),
        diagnosers=tuple(args.diagnosers),
    )
    result = run_crossval(config)
    print(result.render())
    return 0


def _cmd_monitor(args: argparse.Namespace) -> int:
    import os

    from repro.experiments.journal import RunJournal
    from repro.monitor import (
        make_monitor_setup,
        render_monitor_report,
        run_monitor,
        scenario,
        scenario_names,
    )

    if args.list_scenarios:
        from repro.monitor import SCENARIOS

        for name in scenario_names():
            config = SCENARIOS[name]
            print(f"{name:18s} {config.ticks} ticks")
        return 0

    workers = args.workers or (os.cpu_count() or 1)
    config = scenario(args.scenario, args.ticks)
    setup = make_monitor_setup(
        seed=args.seed,
        topo_seed=args.topo_seed,
        n_tier2=args.tier2,
        n_stub=args.stubs,
        n_sensors=args.sensors,
    )
    journal = cached = None
    if args.journal:
        fingerprint = {
            "format": "repro-monitor-journal",
            "scenario": config,
            "seed": args.seed,
            "policy": args.policy,
            "window": args.window,
        }
        journal = RunJournal(args.journal, fingerprint)
        if args.resume:
            cached = journal.load_completed()
    print(
        f"=== monitor {config.name} ({config.ticks} ticks, seed {args.seed}"
        + (f", shards={args.shards}" if args.shards > 1 else "")
        + (f", chaos={args.chaos}" if args.chaos else "")
        + ") ==="
    )
    try:
        result = run_monitor(
            setup,
            config,
            args.seed,
            policy=args.policy,
            window_width=args.window,
            workers=workers,
            shards=args.shards,
            chaos_rate=args.chaos,
            journal=journal,
            cached_reports=cached,
            retention=args.retention,
        )
    except KeyboardInterrupt:
        return _interrupted("monitor", args.journal)
    print(render_monitor_report(result))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    archive = json.loads(Path(args.scenario).read_text())
    if archive.get("format") != "repro-scenario-v1":
        print(f"unknown scenario format {archive.get('format')!r}")
        return 2
    net = topology_from_dict(archive["topology"])
    event = event_from_dict(archive["event"])
    sensors = deploy_sensors(net, archive["sensor_routers"])
    sensor_asns = {net.asn_of_router(s.router_id) for s in sensors}
    sim = Simulator(net, sensor_asns)
    before = NetworkState.nominal()
    after = event.apply_to(before)
    print(f"replaying: {event.describe(net)}")

    snapshot = take_snapshot(sim, sensors, before, after)
    if not snapshot.any_failure():
        print("the archived event no longer breaks any pair")
        return 1
    asx = archive.get("asx")
    control = (
        collect_control_plane(sim, asx, before, after) if asx is not None else None
    )
    truth = ground_truth_links(net, event)
    for name in args.algorithms:
        if name == "nd-lg":
            continue  # needs the blocked/LG configuration, not archived
        result = make_diagnoser(name).diagnose(snapshot, control=control)
        hypothesis = result.physical_hypothesis()
        hits = len(truth & hypothesis)
        print(
            f"  {name:10s} |H|={len(hypothesis)} "
            f"true-positives={hits}/{len(truth)} "
            f"explained={result.fully_explained}"
        )
        for link in sorted(map(str, hypothesis)):
            marker = "**" if any(str(t) == link for t in truth) else "  "
            print(f"    {marker} {link}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="NetDiagnoser reproduction: end-to-end pipeline tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    topology = sub.add_parser("topology", help="generate and save a topology")
    topology.add_argument("--seed", type=int, default=0)
    topology.add_argument(
        "--style",
        choices=("research", "powerlaw"),
        default="research",
        help="'research' is the paper's 165-AS evaluation topology; "
        "'powerlaw' is the internet-scale preferential-attachment tier",
    )
    topology.add_argument("--tier2", type=int, default=22)
    topology.add_argument("--stubs", type=int, default=140)
    topology.add_argument(
        "--ases",
        type=int,
        default=5000,
        help="total AS count (powerlaw style only)",
    )
    topology.add_argument("--out", default="topology.json")
    topology.set_defaults(func=_cmd_topology)

    diagnose = sub.add_parser(
        "diagnose", help="sample one failure scenario and diagnose it"
    )
    diagnose.add_argument("--kind", choices=SCENARIO_KINDS, default="link-1")
    diagnose.add_argument("--sensors", type=int, default=10)
    diagnose.add_argument("--seed", type=int, default=0)
    diagnose.add_argument("--topo-seed", type=int, default=100)
    diagnose.add_argument(
        "--algorithms",
        "--diagnosers",
        nargs="+",
        choices=DIAGNOSER_NAMES,
        default=["tomo", "nd-edge", "nd-bgpigp"],
    )
    diagnose.add_argument(
        "--save-scenario",
        default=None,
        help="archive the sampled scenario (topology + event) to this file",
    )
    diagnose.set_defaults(func=_cmd_diagnose)

    scaling = sub.add_parser(
        "scaling", help="run the §5.3 topology-size sweep"
    )
    scaling.add_argument(
        "--sizes",
        nargs="+",
        type=_size_pair,
        default=None,
        metavar="T2xSTUB",
        help="sizes as tier2xstub pairs, e.g. 6x40 22x140, or total AS "
        "counts for --topology powerlaw, e.g. 1000 5000 (default: the "
        "built-in sweep)",
    )
    scaling.add_argument(
        "--topology",
        choices=("research", "powerlaw"),
        default="research",
        help="topology tier to sweep ('powerlaw' sizes are total AS counts)",
    )
    scaling.add_argument("--sensors", type=int, default=10)
    scaling.add_argument("--failures", type=int, default=5)
    scaling.add_argument("--seed", type=int, default=0)
    scaling.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help="worker processes, one size point each (0 = all cores)",
    )
    scaling.set_defaults(func=_cmd_scaling)

    degradation = sub.add_parser(
        "degradation",
        help="sweep measurement fault rates and report each algorithm's decay",
    )
    degradation.add_argument(
        "--rates",
        nargs="+",
        type=_fault_rate,
        default=[0.0, 0.1, 0.2, 0.3, 0.4, 0.5],
        help="uniform fault rates to sweep (each in [0, 1])",
    )
    degradation.add_argument("--placements", type=int, default=3)
    degradation.add_argument("--failures", type=int, default=10)
    degradation.add_argument("--sensors", type=int, default=10)
    degradation.add_argument("--seed", type=int, default=0)
    degradation.add_argument("--topo-seed", type=int, default=100)
    degradation.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help="worker processes per batch (0 = all cores, 1 = serial)",
    )
    degradation.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="per-placement wall-clock budget in seconds (workers > 1 only)",
    )
    degradation.add_argument(
        "--journal",
        default=None,
        help="checkpoint base path; each rate appends to <journal>.rate<r>",
    )
    degradation.add_argument(
        "--resume",
        action="store_true",
        help="replay completed placements from the journal files",
    )
    degradation.add_argument(
        "--corrupt",
        action="store_true",
        help="sweep corruption modes (lying data) instead of omission faults",
    )
    degradation.add_argument(
        "--validation",
        choices=POLICIES,
        default=None,
        help="screen inputs under this repro.validate policy "
        "(--corrupt defaults to 'quarantine'; omit for undefended runs "
        "only when --corrupt is not set)",
    )
    degradation.set_defaults(func=_cmd_degradation)

    stream = sub.add_parser(
        "stream",
        help="replay a deterministic event stream through the online engine",
    )
    stream.add_argument("--kind", choices=SCENARIO_KINDS, default="link-1")
    stream.add_argument("--episodes", type=int, default=2)
    stream.add_argument("--incident-rounds", type=int, default=2)
    stream.add_argument("--recovery-rounds", type=int, default=2)
    stream.add_argument(
        "--rates",
        nargs="+",
        type=_fault_rate,
        default=[0.0],
        help="fault rates to replay, one full stream each (each in [0, 1])",
    )
    stream.add_argument(
        "--corrupt",
        action="store_true",
        help="inject corruption (lying data) instead of omission faults",
    )
    stream.add_argument(
        "--policy",
        choices=POLICIES,
        default="quarantine",
        help="repro.validate policy applied to every ingested event",
    )
    stream.add_argument(
        "--window",
        type=int,
        default=4,
        help="sliding window width in logical ticks (>= 1)",
    )
    stream.add_argument("--sensors", type=int, default=6)
    stream.add_argument("--tier2", type=int, default=6)
    stream.add_argument("--stubs", type=int, default=40)
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--topo-seed", type=int, default=100)
    stream.add_argument(
        "--blocked-fraction",
        type=_fault_rate,
        default=0.0,
        help="fraction of covered ASes blocking traceroutes (enables nd-lg "
        "scenarios when combined with --algorithms nd-lg)",
    )
    stream.add_argument(
        "--algorithms",
        "--diagnosers",
        nargs="+",
        choices=DIAGNOSER_NAMES,
        default=["tomo", "nd-edge", "nd-bgpigp"],
        help="registry diagnosers to run per episode; 'ensemble' runs "
        "hitting-set + empathy and grades their agreement",
    )
    stream.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help="diagnosis worker processes (0 = all cores, 1 = serial)",
    )
    stream.add_argument(
        "--shards",
        type=int,
        default=1,
        help="ingest shards behind the consistent-hash router "
        "(1 = serial single-shard engine)",
    )
    stream.add_argument(
        "--tenants",
        type=int,
        default=0,
        help="number of synthetic tenants sharing the stream (0 = "
        "single-tenant, admission control disabled)",
    )
    stream.add_argument(
        "--tenant-rate",
        type=int,
        default=None,
        help="per-tenant admitted events per tick (default: unlimited); "
        "requires --tenants",
    )
    stream.add_argument(
        "--journal",
        default=None,
        help="checkpoint base path; each rate appends to <journal>.rate<r>",
    )
    stream.add_argument(
        "--resume",
        action="store_true",
        help="reuse episode reports already in the journal files",
    )
    stream.add_argument(
        "--save-log",
        default=None,
        help="also write the built event log (repro-event-log-v1) here",
    )
    stream.add_argument(
        "--chaos",
        type=_fault_rate,
        default=0.0,
        help="service-chaos rate in [0, 1]: seeded shard crashes/stalls, "
        "slow shards and worker poison, handled by the supervision layer "
        "(implies >= 2 shards)",
    )
    stream.add_argument(
        "--dlq",
        default=None,
        help="dead-letter journal path (repro-dlq-v1); written during the "
        "run, or inspected with --dlq-inspect",
    )
    stream.add_argument(
        "--dlq-inspect",
        action="store_true",
        help="print the entries of the --dlq journal and exit (no replay)",
    )
    stream.set_defaults(func=_cmd_stream)

    crossval = sub.add_parser(
        "crossval",
        help="cross-validate hitting-set vs empathy on identical scenarios",
    )
    crossval.add_argument("--placements", type=int, default=2)
    crossval.add_argument(
        "--failures",
        type=int,
        default=6,
        help="failure scenarios per kind per placement",
    )
    crossval.add_argument("--sensors", type=int, default=8)
    crossval.add_argument("--seed", type=int, default=0)
    crossval.add_argument("--topo-seed", type=int, default=100)
    crossval.add_argument(
        "--kinds",
        nargs="+",
        choices=SCENARIO_KINDS,
        default=["link-1", "link-2", "misconfig"],
    )
    crossval.add_argument(
        "--diagnosers",
        nargs="+",
        choices=[name for name in DIAGNOSER_NAMES if name != "nd-lg"],
        default=["nd-edge", "empathy"],
        help="at least two registry diagnosers to compare "
        "(nd-lg needs a Looking Glass deployment and is excluded)",
    )
    crossval.set_defaults(func=_cmd_crossval)

    monitor = sub.add_parser(
        "monitor",
        help="replay a long-horizon monitoring scenario (flight recorder)",
    )
    monitor.add_argument(
        "--scenario",
        default="mixed-ops",
        help="catalog scenario name (see --list-scenarios)",
    )
    monitor.add_argument(
        "--ticks",
        type=int,
        default=0,
        help="override the scenario's run length (0 = catalog default)",
    )
    monitor.add_argument(
        "--list-scenarios",
        action="store_true",
        help="print the scenario catalog and exit",
    )
    monitor.add_argument("--seed", type=int, default=0)
    monitor.add_argument("--topo-seed", type=int, default=100)
    monitor.add_argument("--sensors", type=int, default=6)
    monitor.add_argument("--tier2", type=int, default=6)
    monitor.add_argument("--stubs", type=int, default=40)
    monitor.add_argument(
        "--policy",
        choices=POLICIES,
        default="quarantine",
        help="repro.validate policy applied to every ingested event",
    )
    monitor.add_argument(
        "--window",
        type=int,
        default=4,
        help="sliding window width in logical ticks (>= 1)",
    )
    monitor.add_argument(
        "--retention",
        type=int,
        default=256,
        help="flight-recorder ring-buffer size (observations kept per pair)",
    )
    monitor.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help="diagnosis worker processes (0 = all cores, 1 = serial)",
    )
    monitor.add_argument(
        "--shards",
        type=int,
        default=1,
        help="ingest shards behind the consistent-hash router "
        "(1 = serial single-shard engine)",
    )
    monitor.add_argument(
        "--chaos",
        type=_fault_rate,
        default=0.0,
        help="service-chaos rate in [0, 1]: seeded shard crashes/stalls "
        "under the supervision layer (implies >= 2 shards)",
    )
    monitor.add_argument(
        "--journal",
        default=None,
        help="checkpoint journal path for crash-safe --resume",
    )
    monitor.add_argument(
        "--resume",
        action="store_true",
        help="reuse episode reports already in the journal file",
    )
    monitor.set_defaults(func=_cmd_monitor)

    replay = sub.add_parser(
        "replay", help="re-diagnose an archived scenario file"
    )
    replay.add_argument("scenario", help="file written by diagnose --save-scenario")
    replay.add_argument(
        "--algorithms",
        "--diagnosers",
        nargs="+",
        choices=DIAGNOSER_NAMES,
        default=["tomo", "nd-edge", "nd-bgpigp"],
    )
    replay.set_defaults(func=_cmd_replay)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (
        ControlPlaneFeedError,
        EmpathyError,
        FaultInjectionError,
        MonitorError,
        StreamError,
        TopologyError,
        ValidationError,
    ) as error:
        # Typed pipeline failures are user-diagnosable (bad inputs, strict
        # validation, a misconfigured or overflowing stream): one line on
        # stderr, nonzero exit, no traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream reader (e.g. `| head`) closed the pipe: exit quietly
        # like other Unix tools. Detach stdout so the interpreter does not
        # raise again while flushing at shutdown.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":
    sys.exit(main())
