"""Multipath-aware diagnosis (the Paris-traceroute extension).

With single-path probing, ND-edge treats any path change of a working
pair as a reroute — under load balancing that plants false evidence
(footnote 2 of the paper: "rerouted paths can be distinguished from path
changes due to load balancing by using a tool such as Paris traceroute").
Given the *full path sets* before and after an event, the evidence
sharpens in both directions:

* a pair is unreachable only when **every** old path is broken: each old
  path contributes its *own* failure set (a conjunction of hitting-set
  constraints, strictly stronger than the single union set);
* a working pair exonerates the union of its current paths' links;
* reroute evidence arises only from old paths that **vanished** from the
  pair's current path set — a flip between surviving equal-cost paths is
  load balancing, not evidence.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.graph import InferredGraph
from repro.core.hitting_set import greedy_hitting_set
from repro.core.linkspace import LinkToken, is_unidentified, undirected_projection
from repro.core.logical import logicalize
from repro.core.nd_edge import physical_clusters
from repro.core.pathset import Pair, ProbePath
from repro.core.result import DiagnosisResult
from repro.errors import DiagnosisError

__all__ = ["nd_edge_multipath"]

MultipathStore = Dict[Pair, Tuple[ProbePath, ...]]


def nd_edge_multipath(
    before: MultipathStore,
    after: MultipathStore,
    asn_of: Callable[[str], Optional[int]],
    failure_weight: int = 1,
    reroute_weight: int = 1,
) -> DiagnosisResult:
    """ND-edge over Paris-traceroute path sets.

    ``before``/``after`` map each probe pair to its discovered paths (an
    empty tuple means unreachable).  Pairs must match between the rounds;
    every pair must have been reachable before the event.
    """
    if set(before) != set(after):
        raise DiagnosisError("before/after multipath rounds cover different pairs")
    for pair, paths in before.items():
        if not paths:
            raise DiagnosisError(
                f"pair {pair} was already unreachable before the event"
            )

    failure_sets: List[FrozenSet[LinkToken]] = []
    working: Set[LinkToken] = set()
    reroute_sets: List[FrozenSet[LinkToken]] = []
    graph = InferredGraph()

    for pair in sorted(before):
        old_paths = before[pair]
        new_paths = after[pair]
        for path in old_paths + new_paths:
            graph.add_path(pair, logicalize(path, asn_of))
        if not new_paths:
            # Unreachable: every old path is broken -> one set per path.
            for path in old_paths:
                failure_sets.append(frozenset(logicalize(path, asn_of)))
            continue
        new_tokens: Set[LinkToken] = set()
        for path in new_paths:
            new_tokens.update(logicalize(path, asn_of))
        working.update(new_tokens)
        # Reroute evidence: old paths absent from the current set.
        surviving = {tuple(p.hops[1:-1]) for p in new_paths}
        new_physical = undirected_projection(new_tokens)
        for path in old_paths:
            if tuple(path.hops[1:-1]) in surviving:
                continue  # still an active equal-cost alternative
            candidates = frozenset(
                token
                for token in logicalize(path, asn_of)
                if not (undirected_projection([token]) & new_physical)
                and not is_unidentified(token)
            )
            if candidates:
                reroute_sets.append(candidates)

    clusters = physical_clusters(failure_sets + reroute_sets)
    outcome = greedy_hitting_set(
        failure_sets,
        reroute_sets=reroute_sets,
        excluded=working,
        failure_weight=failure_weight,
        reroute_weight=reroute_weight,
        cluster_of=lambda t: clusters.get(t, frozenset()),
    )
    return DiagnosisResult(
        algorithm="nd-edge-multipath",
        hypothesis=outcome.hypothesis,
        graph=graph,
        excluded=frozenset(working),
        unexplained_failures=outcome.unexplained_failures,
        unexplained_reroutes=outcome.unexplained_reroutes,
        details={
            "failure_sets": len(failure_sets),
            "reroute_sets": len(reroute_sets),
            "iterations": outcome.iterations,
        },
    )
