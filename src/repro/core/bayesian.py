"""Bayesian fault localisation baseline (Shrink/Steinder lineage).

The paper's related work (§7) singles out a family of Bayesian approaches
— Shrink [Kandula et al. 2005], belief networks [Steinder & Sethi 2004],
and "the state of the art in this area" [Nguyen & Thiran 2007] — that
assume *known link failure probabilities*, in contrast to NetDiagnoser's
probability-free minimum-hypothesis principle.  This module implements
that comparator so the trade-off can be measured instead of cited:

* each link token fails independently with a prior probability given by a
  caller-supplied ``prior_fn`` (uniform by default; a deployment would
  learn per-link rates from history, which is exactly the [23] idea);
* a failed path is observed iff at least one of its links failed
  (noisy-OR with a small leak ε for measurement noise);
* working paths assert all their links are up;
* inference is Shrink's greedy MAP search: repeatedly add the link with
  the largest positive log-posterior gain

      gain(l) = Σ_{unexplained failed paths ∋ l} log(1/ε) + log(p_l / (1 - p_l))

  and stop when no candidate improves the posterior.

With uniform priors and tiny ε this degenerates towards the greedy
Minimum Hitting Set (every unexplained path dominates the prior penalty),
which is precisely the paper's observation that its approach "only
assume[s] that the smallest set of potentially failed links is most likely
to explain the observations".  Non-uniform priors let operators encode
knowledge NetDiagnoser cannot express — the ablation bench quantifies
both directions.
"""

from __future__ import annotations

import math
from typing import Callable, FrozenSet, List, Optional, Set

from repro.core.graph import InferredGraph
from repro.core.linkspace import LinkToken
from repro.core.linkspace import sort_key
from repro.core.pathset import MeasurementSnapshot
from repro.core.result import DiagnosisResult
from repro.errors import DiagnosisError

__all__ = ["uniform_prior", "bayesian_diagnosis"]

#: Leak probability: a path may be observed down with no failed link
#: (measurement noise).  Small enough that explaining paths dominates.
DEFAULT_LEAK = 1e-3


def uniform_prior(probability: float = 0.01) -> Callable[[LinkToken], float]:
    """A prior assigning the same failure probability to every link."""
    if not 0.0 < probability < 0.5:
        raise DiagnosisError(
            "a link failure prior must be in (0, 0.5): failures are rare"
        )

    def prior(_token: LinkToken) -> float:
        return probability

    return prior


def bayesian_diagnosis(
    snapshot: MeasurementSnapshot,
    prior_fn: Optional[Callable[[LinkToken], float]] = None,
    leak: float = DEFAULT_LEAK,
    use_post_failure_paths: bool = True,
    max_hypothesis: int = 32,
) -> DiagnosisResult:
    """Shrink-style greedy MAP fault localisation.

    Operates at physical (directed) granularity on the same snapshot the
    other algorithms consume.  ``use_post_failure_paths`` selects whether
    working constraints come from the current (T+) paths, matching
    ND-edge's information, or the stale T- paths, matching Tomo's.
    """
    prior = prior_fn or uniform_prior()
    if not 0.0 < leak < 1.0:
        raise DiagnosisError("leak probability must be in (0, 1)")

    failure_sets: List[FrozenSet[LinkToken]] = [
        frozenset(snapshot.before.get(pair).links())
        for pair in snapshot.failed_pairs()
    ]
    working: Set[LinkToken] = set()
    working_store = snapshot.after if use_post_failure_paths else snapshot.before
    for pair in snapshot.working_pairs():
        working.update(working_store.get(pair).links())

    candidates: Set[LinkToken] = set()
    for failure_set in failure_sets:
        candidates |= failure_set
    candidates -= working

    def log_odds(token: LinkToken) -> float:
        p = prior(token)
        if not 0.0 < p < 1.0:
            raise DiagnosisError(f"prior for {token} must be in (0, 1), got {p}")
        return math.log(p / (1.0 - p))

    explain_reward = math.log(1.0 / leak)
    hypothesis: Set[LinkToken] = set()
    unexplained = list(failure_sets)
    while unexplained and candidates and len(hypothesis) < max_hypothesis:
        best_token, best_gain = None, 0.0
        for token in sorted(candidates, key=sort_key):
            hits = sum(1 for s in unexplained if token in s)
            if not hits:
                continue
            gain = hits * explain_reward + log_odds(token)
            if gain > best_gain:
                best_token, best_gain = token, gain
        if best_token is None:
            break  # no candidate improves the posterior
        hypothesis.add(best_token)
        candidates.discard(best_token)
        unexplained = [s for s in unexplained if best_token not in s]

    graph = InferredGraph.from_paths(snapshot.before.paths())
    if use_post_failure_paths:
        graph = graph.merge(InferredGraph.from_paths(snapshot.after.paths()))
    return DiagnosisResult(
        algorithm="bayesian",
        hypothesis=frozenset(hypothesis),
        graph=graph,
        excluded=frozenset(working),
        unexplained_failures=tuple(unexplained),
        details={
            "failure_sets": len(failure_sets),
            "leak": leak,
            "max_hypothesis": max_hypothesis,
        },
    )
