"""Post-diagnosis consistency checking (operational cross-validation).

A diagnosis is only as good as its measurements.  Two operational hazards
corrupt snapshots in practice: stale sensors (§6 clock skew — a sensor
reports a pre-event round as current) and lying/broken vantage points.
Both leave a fingerprint the diagnosis itself exposes: a pair *reported
working* whose reported current path crosses a link other evidence elected
into the hypothesis.

Not every overlap is a contradiction, because hypothesis tokens make two
different kinds of claim:

* a blamed **physical token** (`IpLink`) claims the link is broken — a
  truthful working report crossing that link (either direction: our
  failures kill both) is impossible, so one of the two reports is wrong;
* a blamed **logical token** (`LogicalLink`) claims a *partial*,
  per-neighbour-group failure (§3.1) — working traffic over the same link
  under a different tag, or in the reverse direction, is exactly what a
  misconfiguration looks like and contradicts nothing.

:func:`suspect_working_pairs` therefore separates hard
``physical_contradictions`` (re-probe these pairs; somebody is stale)
from soft ``directional_overlaps`` (expected around misconfigurations).
The skew tests show the hard class pinpoints the stale sensor's reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.linkspace import (
    IpLink,
    LogicalLink,
    undirected_projection,
)
from repro.core.logical import logicalize
from repro.core.pathset import MeasurementSnapshot, Pair, PathStore
from repro.core.result import DiagnosisResult

__all__ = [
    "SuspectReport",
    "suspect_working_pairs",
    "implicated_sensors",
    "exclude_sensor_reports",
]


@dataclass(frozen=True)
class SuspectReport:
    """One working-pair report that overlaps the hypothesis."""

    pair: Pair
    physical_contradictions: Tuple
    directional_overlaps: Tuple

    @property
    def severity(self) -> int:
        """Hard contradictions only — the re-probe priority."""
        return len(self.physical_contradictions)


def suspect_working_pairs(
    snapshot: MeasurementSnapshot, result: DiagnosisResult
) -> List[SuspectReport]:
    """Working-pair reports overlapping the blamed links.

    Sorted by hard-contradiction count (descending).  On a clean snapshot
    the hard class is empty by construction for same-direction tokens
    (working paths are excluded from the candidate set), so entries there
    always indicate *cross-report* tension — stale or corrupt measurements.
    """
    blamed_physical = undirected_projection(
        t for t in result.hypothesis if isinstance(t, IpLink)
    )
    blamed_logical = undirected_projection(
        t for t in result.hypothesis if isinstance(t, LogicalLink)
    )
    suspects: List[SuspectReport] = []
    for pair in snapshot.working_pairs():
        path = snapshot.after.get(pair)
        crossed = undirected_projection(logicalize(path, snapshot.asn_of))
        hard = crossed & blamed_physical
        soft = (crossed & blamed_logical) - hard
        if hard or soft:
            suspects.append(
                SuspectReport(
                    pair=pair,
                    physical_contradictions=tuple(sorted(hard, key=str)),
                    directional_overlaps=tuple(sorted(soft, key=str)),
                )
            )
    suspects.sort(key=lambda s: (-s.severity, s.pair))
    return suspects


def implicated_sensors(suspects: List[SuspectReport]) -> Tuple[str, ...]:
    """Sensor source addresses ranked by hard-contradiction involvement.

    A suspect working-pair report is *authored* by its source sensor —
    that is who measured, and claims, the contradictory path.  Summing
    hard contradictions per source ranks the sensors most likely to be
    stale or lying; ties break lexicographically so the ranking is
    deterministic.  Soft directional overlaps never implicate anyone.
    """
    counts = {}
    for suspect in suspects:
        if not suspect.physical_contradictions:
            continue
        source = suspect.pair[0]
        counts[source] = counts.get(source, 0) + suspect.severity
    return tuple(sorted(counts, key=lambda address: (-counts[address], address)))


def exclude_sensor_reports(
    snapshot: MeasurementSnapshot, sensor_address: str
) -> MeasurementSnapshot:
    """The snapshot with every report *authored* by one sensor removed.

    Drops all pairs sourced at ``sensor_address`` from both rounds
    (reports *toward* the sensor were measured by others and stay).
    The result satisfies the snapshot invariants by construction — it
    is a pair-subset of a valid snapshot — and feeds the bounded
    re-diagnosis pass: diagnose once more without the implicated
    sensor's claims and see whether the contradiction dissolves.
    """
    before, after = PathStore(), PathStore()
    for pair in snapshot.before.pairs():
        if pair[0] == sensor_address:
            continue
        before.add(snapshot.before.get(pair))
        after.add(snapshot.after.get(pair))
    return MeasurementSnapshot(
        before=before, after=after, asn_of=snapshot.asn_of
    )
