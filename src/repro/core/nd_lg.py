"""ND-LG: NetDiagnoser with Looking Glass data under blocked traceroutes
(§3.4).

When ASes block traceroute, the inferred graph contains unidentified hops
and the goal degrades gracefully from "find the link" to "find the AS".
ND-LG is ND-bgpigp plus two steps:

1. every UH is tagged with candidate ASes via Looking Glasses
   (:mod:`repro.core.uh`);
2. unidentified links that could be the same hidden link are clustered
   (:mod:`repro.core.clustering`), and a candidate's greedy score counts
   the failure sets of its whole cluster.

The result's ``details["uh_tags"]`` carries the tag map so the AS-level
metrics (:mod:`repro.core.metrics`) can project UH hypothesis links onto
ASes.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.core.clustering import build_clusters
from repro.core.control_plane import ControlPlaneView
from repro.core.hitting_set import greedy_hitting_set
from repro.core.linkspace import LinkToken, UhNode
from repro.core.nd_bgpigp import igp_preseed, withdrawal_exonerations
from repro.core.nd_edge import build_edge_inputs
from repro.core.pathset import MeasurementSnapshot
from repro.core.result import DiagnosisResult

__all__ = ["LgLookup", "nd_lg"]

#: (asn, destination sensor address, epoch) -> AS path or None.  Bound by
#: the measurement layer to the Looking Glass service and the routing state
#: of the matching epoch.
LgLookup = Callable[[int, str, str], Optional[Tuple[int, ...]]]


def nd_lg(
    snapshot: MeasurementSnapshot,
    control: Optional[ControlPlaneView],
    lg_lookup: LgLookup,
    failure_weight: int = 1,
    reroute_weight: int = 1,
) -> DiagnosisResult:
    """Run ND-LG on a snapshot with blocked-traceroute paths."""
    from repro.core.uh import uh_tags  # local import to avoid cycle in docs

    inputs = build_edge_inputs(snapshot)

    # Step 1: tag every UH node of every probe path.
    tags: Dict[UhNode, FrozenSet[int]] = {}
    for store, epoch in ((snapshot.before, "pre"), (snapshot.after, "post")):
        for path in store.paths():
            if not path.has_unidentified_hops():
                continue
            tags.update(
                uh_tags(
                    path,
                    snapshot.asn_of,
                    lambda asn, _dst=path.dst, _ep=epoch: lg_lookup(asn, _dst, _ep),
                )
            )

    # Apply AS-X's control-plane knowledge first: preseed from IGP and
    # per-pair withdrawal pruning (same semantics as ND-bgpigp).
    preseed = igp_preseed(control, inputs) if control else frozenset()
    removals = (
        withdrawal_exonerations(control, snapshot, inputs.failure_sets)
        if control
        else {}
    )
    excluded = inputs.excluded() - preseed

    pruned_tokens = 0
    failure_sets = []
    for pair, failure_set in inputs.failure_sets.items():
        removed = removals.get(pair, frozenset()) - preseed
        pruned = failure_set - removed
        pruned_tokens += len(failure_set) - len(pruned)
        failure_sets.append(pruned if pruned else failure_set)

    # Step 2: cluster unidentified links over the probed graph, counting
    # membership against the pruned failure sets (rule iii).
    clusters = build_clusters(inputs.graph.tokens(), failure_sets, tags)

    def cluster_of(token: LinkToken) -> FrozenSet[LinkToken]:
        # UH clusters (§3.4) and same-physical logical siblings compose.
        return clusters.get(token, frozenset()) | inputs.cluster_of(token)

    outcome = greedy_hitting_set(
        failure_sets,
        reroute_sets=list(inputs.reroute_map.values()),
        excluded=excluded,
        preseed=preseed,
        failure_weight=failure_weight,
        reroute_weight=reroute_weight,
        cluster_of=cluster_of,
    )
    return DiagnosisResult(
        algorithm="nd-lg",
        hypothesis=outcome.hypothesis,
        graph=inputs.graph,
        excluded=excluded,
        unexplained_failures=outcome.unexplained_failures,
        unexplained_reroutes=outcome.unexplained_reroutes,
        details={
            "failure_sets": len(failure_sets),
            "reroute_sets": len(inputs.reroute_map),
            "uh_tags": dict(tags),
            "clusters": {k: v for k, v in clusters.items() if v},
            "igp_preseeded": len(preseed),
            "withdrawal_exonerated": pruned_tokens,
            "iterations": outcome.iterations,
        },
    )
