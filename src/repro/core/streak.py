"""The consecutive-observation streak primitive shared by both detectors.

The paper's §6 robustness rule — "raise an alarm only if the failure
manifests itself in several successive measurements" — appears twice in
this codebase with deliberately different clearing semantics:

* the batch :class:`~repro.measurement.detection.FailureDetector` clears
  a pair's alarm after a *single* good round (``close_after=1``): batch
  rounds are converged snapshots, so one success is proof of recovery;
* the streaming :class:`~repro.stream.episodes.PairAlarmTracker` clears
  only after ``close_after`` consecutive successes: live streams see
  half-recovered pairs, and the hysteresis stops them flapping an
  episode open and closed.

Both are the same state machine at different thresholds, so exactly one
implementation lives here (and :mod:`repro.stream.episodes` re-exports
it under its historical name).  A pair's alarm depends only on its own
observation sequence, which is what lets the sharded engine partition
pairs across trackers and still match the single tracker bit for bit.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import StreamError

__all__ = ["Pair", "PairAlarmTracker"]

Pair = Tuple[str, str]


class _PairAlarm:
    """Debounce/hysteresis state for one probe pair."""

    __slots__ = ("fails", "successes", "alarmed")

    def __init__(self) -> None:
        self.fails = 0
        self.successes = 0
        self.alarmed = False


class PairAlarmTracker:
    """Per-pair debounce state: alarm after ``open_after`` consecutive
    failures, clear after ``close_after`` consecutive successes.

    The shardable half of the streaming detector: any partition of pairs
    across trackers yields, pair for pair, the same alarms the single
    tracker would — the keystone of the sharded engine's bit-identical
    replay guarantee.  With ``close_after=1`` it is also the exact batch
    :class:`~repro.measurement.detection.FailureDetector` semantics.
    """

    def __init__(self, open_after: int = 2, close_after: int = 2) -> None:
        if open_after < 1 or close_after < 1:
            raise StreamError(
                "episode debounce thresholds must be >= 1 "
                f"(open_after={open_after}, close_after={close_after})"
            )
        self.open_after = open_after
        self.close_after = close_after
        self._alarms: Dict[Pair, _PairAlarm] = {}
        self.observations = 0

    def observe(self, pair: Pair, reached: bool) -> None:
        """Fold one reachability observation (probe or ping) for a pair."""
        self.observations += 1
        alarm = self._alarms.setdefault(pair, _PairAlarm())
        if reached:
            alarm.successes += 1
            alarm.fails = 0
            if alarm.alarmed and alarm.successes >= self.close_after:
                alarm.alarmed = False
        else:
            alarm.fails += 1
            alarm.successes = 0
            if alarm.fails >= self.open_after:
                alarm.alarmed = True

    def forget(self, pair_member: str) -> None:
        """Drop alarm state for every pair touching a dark sensor.

        A sensor that stopped reporting is not *failing* — its silence
        must not keep an episode open forever.
        """
        for pair in [p for p in self._alarms if pair_member in p]:
            del self._alarms[pair]

    def alarmed_pairs(self) -> Tuple[Pair, ...]:
        return tuple(
            sorted(pair for pair, alarm in self._alarms.items() if alarm.alarmed)
        )

    def pairs_tracked(self) -> int:
        return len(self._alarms)

    # -------------------------------------------------------- checkpointing

    def state(self) -> Dict[str, object]:
        """A picklable snapshot of the debounce state for checkpoints."""
        return {
            "alarms": [
                (pair, alarm.fails, alarm.successes, alarm.alarmed)
                for pair, alarm in sorted(self._alarms.items())
            ],
            "observations": self.observations,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rebuild the tracker from a :meth:`state` snapshot."""
        self._alarms = {}
        for pair, fails, successes, alarmed in state["alarms"]:
            alarm = _PairAlarm()
            alarm.fails = fails
            alarm.successes = successes
            alarm.alarmed = alarmed
            self._alarms[pair] = alarm
        self.observations = state["observations"]
