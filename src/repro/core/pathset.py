"""Probe paths and the stores the troubleshooter receives them in.

A :class:`ProbePath` is one traceroute as the troubleshooter sees it:
endpoint sensor addresses, the hop sequence (identified addresses and
:class:`~repro.core.linkspace.UhNode` stars) and whether the destination
answered.  A :class:`PathStore` holds one full-mesh measurement round; a
:class:`MeasurementSnapshot` pairs the round taken before a failure event
(``T-``) with the one taken after (``T+``) plus the IP-to-AS mapping
callable — the complete edge-data input of every NetDiagnoser variant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.core.linkspace import Endpoint, IpLink, ip_link
from repro.errors import DiagnosisError

__all__ = [
    "EPOCH_PRE",
    "EPOCH_POST",
    "ProbePath",
    "PathStore",
    "MeasurementSnapshot",
]

EPOCH_PRE = "pre"
EPOCH_POST = "post"

#: A probe pair: (source sensor address, destination sensor address).
Pair = Tuple[str, str]


@dataclass(frozen=True)
class ProbePath:
    """One traceroute between two sensors.

    ``hops`` starts at the source sensor's own address and, when the probe
    reached, ends at the destination sensor's address.  A failed probe's
    hops stop at the last responding position before the blackhole.
    """

    src: str
    dst: str
    hops: Tuple[Endpoint, ...]
    reached: bool
    epoch: str = EPOCH_PRE

    def __post_init__(self) -> None:
        if not self.hops:
            raise DiagnosisError(f"probe {self.src}->{self.dst} has no hops")
        if self.hops[0] != self.src:
            raise DiagnosisError(
                f"probe {self.src}->{self.dst}: first hop must be the source sensor"
            )
        if self.reached and self.hops[-1] != self.dst:
            raise DiagnosisError(
                f"probe {self.src}->{self.dst} reached but does not end at "
                "the destination sensor"
            )
        # Memo slot for links(); the dataclass is frozen so it must be set
        # through object.__setattr__ (same trick TraceResult.addresses uses).
        object.__setattr__(self, "_links_memo", None)

    @property
    def pair(self) -> Pair:
        return (self.src, self.dst)

    def links(self) -> Tuple[IpLink, ...]:
        """The directed physical-level link tokens along this path.

        Memoised: suspect-set construction walks every failed path's links
        once per diagnosis variant, and the hops are immutable.
        """
        memo = self._links_memo
        if memo is None:
            memo = tuple(
                ip_link(a, b) for a, b in zip(self.hops, self.hops[1:])
            )
            object.__setattr__(self, "_links_memo", memo)
        return memo

    def has_unidentified_hops(self) -> bool:
        """True when at least one hop is a star."""
        return any(not isinstance(hop, str) for hop in self.hops)


class PathStore:
    """One full-mesh measurement round, indexed by probe pair."""

    def __init__(self, paths: Optional[Dict[Pair, ProbePath]] = None) -> None:
        self._paths: Dict[Pair, ProbePath] = {}
        self._pairs_memo: Optional[Tuple[Pair, ...]] = None
        for path in (paths or {}).values():
            self.add(path)

    def add(self, path: ProbePath) -> None:
        """Insert one probe path (pairs must be unique)."""
        if path.pair in self._paths:
            raise DiagnosisError(f"duplicate probe for pair {path.pair}")
        self._paths[path.pair] = path
        self._pairs_memo = None

    def get(self, pair: Pair) -> ProbePath:
        try:
            return self._paths[pair]
        except KeyError:
            raise DiagnosisError(f"no probe recorded for pair {pair}") from None

    def __contains__(self, pair: Pair) -> bool:
        return pair in self._paths

    def __len__(self) -> int:
        return len(self._paths)

    def pairs(self) -> Tuple[Pair, ...]:
        """All probe pairs, sorted for determinism.

        The sorted tuple is memoised (invalidated by :meth:`add`): at
        internet scale a full mesh holds thousands of pairs and every
        diagnosis variant iterates them several times.
        """
        if self._pairs_memo is None:
            self._pairs_memo = tuple(sorted(self._paths))
        return self._pairs_memo

    def paths(self) -> Iterator[ProbePath]:
        """All paths in pair order."""
        for pair in self.pairs():
            yield self._paths[pair]

    def working_pairs(self) -> Tuple[Pair, ...]:
        """Pairs whose probe reached the destination."""
        return tuple(p for p in self.pairs() if self._paths[p].reached)

    def failed_pairs(self) -> Tuple[Pair, ...]:
        """Pairs whose probe did not reach the destination."""
        return tuple(p for p in self.pairs() if not self._paths[p].reached)


@dataclass
class MeasurementSnapshot:
    """Everything the edge gives the troubleshooter about one event.

    ``asn_of`` maps an identified hop address to its AS number (or ``None``)
    — the IP-to-AS technique of the paper.  The reachability matrix R of
    §2.3 is the ``reached`` flag of the *after* store
    (:meth:`failed_pairs` / :meth:`working_pairs`).
    """

    before: PathStore
    after: PathStore
    asn_of: Callable[[str], Optional[int]] = field(default=lambda _a: None)

    def __post_init__(self) -> None:
        if set(self.before.pairs()) != set(self.after.pairs()):
            raise DiagnosisError(
                "before/after measurement rounds cover different probe pairs"
            )
        for pair in self.before.pairs():
            if not self.before.get(pair).reached:
                raise DiagnosisError(
                    f"pre-failure probe for pair {pair} did not reach; the "
                    "troubleshooter is only invoked on previously-working pairs"
                )
        self._rerouted_memo: Optional[Tuple[Pair, ...]] = None

    def failed_pairs(self) -> Tuple[Pair, ...]:
        """Pairs that became unreachable (R_ij = 0)."""
        return self.after.failed_pairs()

    def working_pairs(self) -> Tuple[Pair, ...]:
        """Pairs still reachable after the event (R_ij = 1)."""
        return self.after.working_pairs()

    def rerouted_pairs(self) -> Tuple[Pair, ...]:
        """Working pairs whose T+ path differs from their T- path (§3.2).

        UH hops are compared by position only (a star at hop 4 before and
        after is assumed to be the same hidden router — the troubleshooter
        cannot tell otherwise, and the paper’s blocked-traceroute scenarios
        only use single link failures where this is exact).

        Memoised: the snapshot's stores are frozen by the time a diagnosis
        starts, and every variant that weighs reroute evidence asks for
        this tuple.
        """
        if self._rerouted_memo is None:
            rerouted = []
            for pair in self.working_pairs():
                old = _normalised_hops(self.before.get(pair))
                new = _normalised_hops(self.after.get(pair))
                if old != new:
                    rerouted.append(pair)
            self._rerouted_memo = tuple(rerouted)
        return self._rerouted_memo

    def any_failure(self) -> bool:
        """True when the troubleshooter has something to diagnose."""
        return bool(self.failed_pairs())


def _normalised_hops(path: ProbePath) -> Tuple:
    """Hop sequence with UH identity reduced to position (see
    :meth:`MeasurementSnapshot.rerouted_pairs`)."""
    return tuple(
        hop if isinstance(hop, str) else ("*", index)
        for index, hop in enumerate(path.hops)
    )
