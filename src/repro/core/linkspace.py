"""Link tokens: the elements diagnosis algorithms reason over.

The hitting-set machinery is agnostic to what a "link" is; this module
defines the token types the paper's graphs contain and the projections
between granularities.

§2.3 defines G as a *directed* graph built from the union of traceroute
paths, and directedness is load-bearing: each probe direction contributes
its own token, so the greedy score of a link reflects per-direction
evidence and a physical link shared by forward and reverse probes cannot
shadow a directional culprit.  The token types:

* :class:`IpLink` — a directed pair of consecutive traceroute hop
  endpoints.  An endpoint is an identified address (``str``) or an
  :class:`UhNode` (a ``'*'``).  A link with a UH endpoint is the paper's
  *unidentified link*.
* :class:`LogicalLink` — a directed interdomain link annotated with the
  out-neighbour AS tag of §3.1.  The paper splits the physical link u→v
  into u→v(W) and v(W)→v; those two halves are traversed by exactly the
  same paths, so one token represents the series pair (``DESIGN.md`` §5).
* :class:`PhysicalLink` — an *undirected* canonical endpoint pair, used
  only by the metrics: ground truth is physical (a fibre cut kills both
  directions), so hypotheses are compared after
  :func:`undirected_projection`.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple, Union

__all__ = [
    "ORIGIN_TAG",
    "UNKNOWN_TAG",
    "UhNode",
    "Endpoint",
    "IpLink",
    "LogicalLink",
    "PhysicalLink",
    "LinkToken",
    "ip_link",
    "physical_link",
    "physical_projection",
    "undirected_projection",
    "sort_key",
    "is_unidentified",
]

#: Out-neighbour tag for a logical link whose path terminates in the far AS
#: (the route is originated there, so there is no next AS).
ORIGIN_TAG = 0

#: Out-neighbour tag when the next AS could not be determined (e.g. the path
#: dives into a blocked region right after the link, or the trace truncated).
UNKNOWN_TAG = -1


@dataclass(frozen=True, order=True)
class UhNode:
    """An unidentified hop: one ``'*'`` at a position of one traceroute.

    Identity is per (probe pair, epoch, hop index): the paper requires an
    unidentified link to "appear in only one path", which holds by
    construction because two different traceroutes can never share a UH
    node.  ``epoch`` separates pre-failure from post-failure traces.
    """

    src: str
    dst: str
    epoch: str
    index: int


Endpoint = Union[str, UhNode]


def _endpoint_key(endpoint: Endpoint) -> Tuple:
    """Total order over endpoints: identified addresses first, numerically."""
    if isinstance(endpoint, str):
        return (0, int(ipaddress.ip_address(endpoint)))
    return (1, endpoint.src, endpoint.dst, endpoint.epoch, endpoint.index)


@dataclass(frozen=True)
class IpLink:
    """A directed link between two consecutive traceroute hop endpoints."""

    src: Endpoint
    dst: Endpoint

    @property
    def identified(self) -> bool:
        """True when both endpoints answered with addresses."""
        return isinstance(self.src, str) and isinstance(self.dst, str)

    def endpoints(self) -> Tuple[Endpoint, Endpoint]:
        return (self.src, self.dst)

    def physical(self) -> "PhysicalLink":
        """The undirected physical link this token measures."""
        return physical_link(self.src, self.dst)

    def __str__(self) -> str:  # pragma: no cover - debug convenience
        return f"{_show(self.src)}->{_show(self.dst)}"


def ip_link(src: Endpoint, dst: Endpoint) -> IpLink:
    """Build the directed :class:`IpLink` from hop ``src`` to hop ``dst``."""
    return IpLink(src, dst)


@dataclass(frozen=True)
class LogicalLink:
    """A directed interdomain link tagged with its out-neighbour AS (§3.1).

    ``src``/``dst`` are the identified addresses of the routers on either
    side, in the direction the annotated paths flow; ``tag`` is the AS the
    paths continue to after the far router's AS (``ORIGIN_TAG`` when they
    terminate there, ``UNKNOWN_TAG`` when undeterminable).

    A BGP export-filter misconfiguration at ``dst``'s router towards
    ``src``'s router manifests as exactly one of these tokens failing while
    the physical link keeps carrying other tags.
    """

    src: str
    dst: str
    tag: int

    @property
    def identified(self) -> bool:
        return True

    def physical(self) -> "PhysicalLink":
        """The undirected physical link this logical link annotates."""
        return physical_link(self.src, self.dst)

    def __str__(self) -> str:  # pragma: no cover - debug convenience
        tag = {ORIGIN_TAG: "origin", UNKNOWN_TAG: "?"}.get(self.tag, str(self.tag))
        return f"{self.src}->{self.dst}({tag})"


@dataclass(frozen=True)
class PhysicalLink:
    """An undirected endpoint pair — the metrics' ground-truth granularity.

    Always construct through :func:`physical_link`, which canonicalises
    endpoint order.
    """

    lo: Endpoint
    hi: Endpoint

    @property
    def identified(self) -> bool:
        return isinstance(self.lo, str) and isinstance(self.hi, str)

    def endpoints(self) -> Tuple[Endpoint, Endpoint]:
        return (self.lo, self.hi)

    def __str__(self) -> str:  # pragma: no cover - debug convenience
        return f"{_show(self.lo)}--{_show(self.hi)}"


def physical_link(a: Endpoint, b: Endpoint) -> PhysicalLink:
    """Canonical undirected :class:`PhysicalLink` over two endpoints."""
    if _endpoint_key(a) <= _endpoint_key(b):
        return PhysicalLink(a, b)
    return PhysicalLink(b, a)


LinkToken = Union[IpLink, LogicalLink]


def is_unidentified(token: LinkToken) -> bool:
    """True for links with at least one UH endpoint."""
    return isinstance(token, IpLink) and not token.identified


def physical_projection(tokens: Iterable[LinkToken]) -> FrozenSet[IpLink]:
    """Collapse logical links onto directed physical links.

    Logical tags vanish; direction is preserved.  Unidentified links pass
    through unchanged.
    """
    projected = set()
    for token in tokens:
        if isinstance(token, LogicalLink):
            projected.add(IpLink(token.src, token.dst))
        else:
            projected.add(token)
    return frozenset(projected)


def undirected_projection(tokens: Iterable[LinkToken]) -> FrozenSet[PhysicalLink]:
    """Collapse tokens onto undirected physical links (metric space)."""
    return frozenset(token.physical() for token in tokens)


def sort_key(token: LinkToken) -> Tuple:
    """Deterministic total order over mixed token sets."""
    if isinstance(token, LogicalLink):
        return (1, _endpoint_key(token.src), _endpoint_key(token.dst), token.tag)
    return (0, _endpoint_key(token.src), _endpoint_key(token.dst))


def _show(endpoint: Endpoint) -> str:  # pragma: no cover - debug convenience
    return endpoint if isinstance(endpoint, str) else f"*{endpoint.index}"
