"""Operator-facing AS-level report (ranked suspects).

Figures 11-12 score AS-level diagnosis with sensitivity/specificity, but
an operator wants a *ranked* answer: which AS should I call first?  This
module turns a diagnosis into that ranking: each hypothesis token votes
for the AS(es) it maps to (identified endpoints through IP-to-AS; UH
endpoints through their §3.4 candidate tags, each candidate sharing the
vote), and ASes are sorted by vote weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.core.linkspace import LogicalLink, UhNode
from repro.core.result import DiagnosisResult

__all__ = ["AsSuspect", "rank_suspect_ases"]


@dataclass(frozen=True)
class AsSuspect:
    """One AS in the ranked output."""

    asn: int
    weight: float
    name: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - display convenience
        label = self.name or f"AS{self.asn}"
        return f"{label} (weight {self.weight:.2f})"


def rank_suspect_ases(
    result: DiagnosisResult,
    asn_of: Callable[[str], Optional[int]],
    names: Optional[Mapping[int, str]] = None,
) -> List[AsSuspect]:
    """Rank ASes by how much of the hypothesis points at them.

    Each hypothesis token contributes one vote, split evenly across the
    candidate ASes of its endpoints — so an unambiguous intradomain link
    puts a full vote on one AS, while a dark link with tag {B, D} puts a
    quarter-vote on each of B and D per endpoint.  Deterministic: ties
    break on ascending ASN.
    """
    tags = result.details.get("uh_tags", {})
    votes: Dict[int, float] = {}
    for token in result.hypothesis:
        if isinstance(token, LogicalLink):
            endpoints = (token.src, token.dst)
        else:
            endpoints = token.endpoints()
        for endpoint in endpoints:
            if isinstance(endpoint, UhNode):
                candidates = tags.get(endpoint, frozenset())
            else:
                asn = asn_of(endpoint)
                candidates = frozenset({asn}) if asn is not None else frozenset()
            if not candidates:
                continue
            share = (1.0 / len(endpoints)) / len(candidates)
            for asn in candidates:
                votes[asn] = votes.get(asn, 0.0) + share
    table = names or {}
    ranked = sorted(votes.items(), key=lambda item: (-item[1], item[0]))
    return [
        AsSuspect(asn=asn, weight=weight, name=table.get(asn))
        for asn, weight in ranked
    ]
