"""Duffield's SCFS algorithm — the single-source baseline (§2.1).

"Smallest Common Failure Set" (Duffield 2006) works on a *tree* of paths
from one source to many destinations with known leaf status: it blames,
for every maximal subtree whose leaves are all bad, the link entering the
subtree's root — the links *nearest the source* consistent with the
observations.  The paper uses it as the starting point that cannot handle
the multi-source multi-destination, multi-AS setting; we keep it as a
baseline and for regression tests against the Figure 1 example.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Mapping, Set, Tuple

from repro.errors import DiagnosisError

__all__ = ["scfs", "scfs_diagnose"]

Node = Hashable
Edge = Tuple[Node, Node]  # (parent, child)


def scfs(
    parent: Mapping[Node, Node],
    root: Node,
    leaf_status: Mapping[Node, bool],
) -> FrozenSet[Edge]:
    """Run SCFS on a tree.

    Parameters
    ----------
    parent:
        Child -> parent map describing the tree (the root has no entry).
    root:
        The probing source.
    leaf_status:
        Leaf node -> True (reachable) / False (unreachable).  Every leaf of
        the tree must be present.

    Returns
    -------
    The set of (parent, child) edges blamed: for each maximal all-bad
    subtree, the edge entering its root.
    """
    children: Dict[Node, List[Node]] = {}
    for child, par in parent.items():
        children.setdefault(par, []).append(child)
    for node in children:
        children[node].sort(key=repr)
    if root in parent:
        raise DiagnosisError("the root cannot have a parent")

    all_nodes: Set[Node] = {root} | set(parent) | set(children)
    leaves = [n for n in all_nodes if n not in children]
    for leaf in leaves:
        if leaf not in leaf_status:
            raise DiagnosisError(f"leaf {leaf!r} has no observed status")

    # A node is "bad" when every leaf under it is bad.
    bad: Dict[Node, bool] = {}

    def compute(node: Node) -> bool:
        if node in bad:
            return bad[node]
        if node not in children:  # leaf
            bad[node] = not leaf_status[node]
            return bad[node]
        # Evaluate every child (no short-circuit: walk() needs bad[] filled
        # for the whole tree).
        child_bad = [compute(child) for child in children[node]]
        bad[node] = all(child_bad)
        return bad[node]

    compute(root)

    blamed: Set[Edge] = set()

    def walk(node: Node) -> None:
        # Called only on non-bad nodes: blame edges into maximal all-bad
        # subtrees, recurse into the rest.
        for child in children.get(node, ()):
            if bad[child]:
                blamed.add((node, child))
            else:
                walk(child)

    if bad[root]:
        # Every destination is unreachable: the most parsimonious culprit
        # is the root's own access link(s); blame every edge out of root.
        for child in children.get(root, ()):
            blamed.add((root, child))
    else:
        walk(root)
    return frozenset(blamed)


def scfs_diagnose(snapshot) -> "DiagnosisResult":
    """Run SCFS per source over a :class:`MeasurementSnapshot`.

    SCFS assumes a *tree* of paths from one source; the full mesh is not
    one, so the adapter builds one tree per probing source from the T-
    paths and runs SCFS independently on each, unioning the blamed edges.
    Where the measured paths from a source are not tree-consistent (a hop
    seen with two different upstream hops), the first-seen parent wins and
    the conflicting path's tail is dropped from the tree — its pair then
    contributes no leaf status, which is exactly the blind spot that makes
    SCFS the paper's single-source baseline rather than a contender.
    Leaf status comes from the T+ reachability matrix; intermediate nodes
    that happen to be destinations keep their subtree (their own status is
    unused, another SCFS limitation we surface in ``details``).
    """
    from repro.core.graph import InferredGraph
    from repro.core.linkspace import ip_link
    from repro.core.pathset import MeasurementSnapshot
    from repro.core.result import DiagnosisResult

    assert isinstance(snapshot, MeasurementSnapshot)
    reached = {pair: snapshot.after.get(pair).reached for pair in snapshot.after.pairs()}

    by_source: Dict[str, List] = {}
    for path in snapshot.before.paths():
        by_source.setdefault(path.src, []).append(path)

    blamed_links: Set = set()
    truncated = 0
    unused_status = 0
    sources_run = 0
    for source in sorted(by_source):
        paths = by_source[source]
        if all(reached[path.pair] for path in paths):
            continue  # nothing bad under this root: SCFS blames nothing
        sources_run += 1
        parent: Dict[Node, Node] = {}
        destinations: Dict[Node, bool] = {}
        for path in paths:
            whole = True
            for a, b in zip(path.hops, path.hops[1:]):
                if b == source:
                    whole = False
                    break  # cannot re-enter the root
                if b in parent:
                    if parent[b] != a:
                        whole = False
                        break  # tree conflict: first-seen parent wins
                else:
                    parent[b] = a
            if whole:
                destinations[path.hops[-1]] = reached[path.pair]
            else:
                truncated += 1
        children_of = set(parent.values())
        leaf_status = {}
        for node in set(parent) - children_of:
            if node in destinations:
                leaf_status[node] = destinations[node]
            else:
                # A truncated tail left this node childless with no probe
                # of its own; treat it as good (no evidence against it).
                leaf_status[node] = True
                unused_status += 1
        unused_status += sum(1 for d in destinations if d in children_of)
        if not leaf_status or all(leaf_status.values()):
            continue  # every surviving leaf good: nothing to blame
        for par, child in scfs(parent, source, leaf_status):
            blamed_links.add(ip_link(par, child))

    hypothesis = frozenset(blamed_links)
    unexplained = tuple(
        links
        for links in (
            frozenset(snapshot.before.get(pair).links())
            for pair in snapshot.failed_pairs()
        )
        if not links & hypothesis
    )
    return DiagnosisResult(
        algorithm="scfs",
        hypothesis=hypothesis,
        graph=InferredGraph.from_paths(snapshot.before.paths()),
        unexplained_failures=unexplained,
        details={
            "sources": sources_run,
            "truncated_paths": truncated,
            "shadowed_leaves": unused_status,
        },
    )
