"""Duffield's SCFS algorithm — the single-source baseline (§2.1).

"Smallest Common Failure Set" (Duffield 2006) works on a *tree* of paths
from one source to many destinations with known leaf status: it blames,
for every maximal subtree whose leaves are all bad, the link entering the
subtree's root — the links *nearest the source* consistent with the
observations.  The paper uses it as the starting point that cannot handle
the multi-source multi-destination, multi-AS setting; we keep it as a
baseline and for regression tests against the Figure 1 example.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Mapping, Set, Tuple

from repro.errors import DiagnosisError

__all__ = ["scfs"]

Node = Hashable
Edge = Tuple[Node, Node]  # (parent, child)


def scfs(
    parent: Mapping[Node, Node],
    root: Node,
    leaf_status: Mapping[Node, bool],
) -> FrozenSet[Edge]:
    """Run SCFS on a tree.

    Parameters
    ----------
    parent:
        Child -> parent map describing the tree (the root has no entry).
    root:
        The probing source.
    leaf_status:
        Leaf node -> True (reachable) / False (unreachable).  Every leaf of
        the tree must be present.

    Returns
    -------
    The set of (parent, child) edges blamed: for each maximal all-bad
    subtree, the edge entering its root.
    """
    children: Dict[Node, List[Node]] = {}
    for child, par in parent.items():
        children.setdefault(par, []).append(child)
    for node in children:
        children[node].sort(key=repr)
    if root in parent:
        raise DiagnosisError("the root cannot have a parent")

    all_nodes: Set[Node] = {root} | set(parent) | set(children)
    leaves = [n for n in all_nodes if n not in children]
    for leaf in leaves:
        if leaf not in leaf_status:
            raise DiagnosisError(f"leaf {leaf!r} has no observed status")

    # A node is "bad" when every leaf under it is bad.
    bad: Dict[Node, bool] = {}

    def compute(node: Node) -> bool:
        if node in bad:
            return bad[node]
        if node not in children:  # leaf
            bad[node] = not leaf_status[node]
            return bad[node]
        # Evaluate every child (no short-circuit: walk() needs bad[] filled
        # for the whole tree).
        child_bad = [compute(child) for child in children[node]]
        bad[node] = all(child_bad)
        return bad[node]

    compute(root)

    blamed: Set[Edge] = set()

    def walk(node: Node) -> None:
        # Called only on non-bad nodes: blame edges into maximal all-bad
        # subtrees, recurse into the rest.
        for child in children.get(node, ()):
            if bad[child]:
                blamed.add((node, child))
            else:
                walk(child)

    if bad[root]:
        # Every destination is unreachable: the most parsimonious culprit
        # is the root's own access link(s); blame every edge out of root.
        for child in children.get(root, ()):
            blamed.add((root, child))
    else:
        walk(root)
    return frozenset(blamed)
