"""The paper's contribution: multi-AS Boolean tomography algorithms.

Public surface: link tokens (:mod:`repro.core.linkspace`), probe paths and
snapshots (:mod:`repro.core.pathset`), the inferred graph, the four
diagnosis algorithms behind the :class:`~repro.core.diagnoser.NetDiagnoser`
facade, the diagnosability metric, and sensitivity/specificity scoring.
"""

from repro.core.as_report import AsSuspect, rank_suspect_ases
from repro.core.bayesian import bayesian_diagnosis, uniform_prior
from repro.core.consistency import SuspectReport, suspect_working_pairs
from repro.core.control_plane import (
    ControlPlaneView,
    IgpLinkDownObservation,
    WithdrawalObservation,
)
from repro.core.diagnosability import diagnosability, indistinguishable_classes
from repro.core.diagnoser import VARIANTS, NetDiagnoser
from repro.core.graph import InferredGraph
from repro.core.hitting_set import GreedyResult, exact_hitting_set, greedy_hitting_set
from repro.core.linkspace import (
    ORIGIN_TAG,
    UNKNOWN_TAG,
    IpLink,
    LinkToken,
    LogicalLink,
    PhysicalLink,
    UhNode,
    ip_link,
    is_unidentified,
    physical_link,
    physical_projection,
    sort_key,
    undirected_projection,
)
from repro.core.logical import logicalize
from repro.core.metrics import (
    MetricPair,
    as_projection,
    physical_metrics,
    sensitivity,
    specificity,
)
from repro.core.multipath import nd_edge_multipath
from repro.core.nd_bgpigp import nd_bgpigp
from repro.core.nd_edge import nd_edge
from repro.core.nd_lg import nd_lg
from repro.core.pathset import (
    EPOCH_POST,
    EPOCH_PRE,
    MeasurementSnapshot,
    PathStore,
    ProbePath,
)
from repro.core.reachability import ReachabilityMatrix
from repro.core.reroute import reroute_sets
from repro.core.result import DiagnosisResult
from repro.core.scfs import scfs
from repro.core.tomo import tomo
from repro.core.uh import uh_tags

__all__ = [
    "AsSuspect",
    "ControlPlaneView",
    "DiagnosisResult",
    "EPOCH_POST",
    "EPOCH_PRE",
    "GreedyResult",
    "IgpLinkDownObservation",
    "InferredGraph",
    "IpLink",
    "LinkToken",
    "LogicalLink",
    "MeasurementSnapshot",
    "MetricPair",
    "NetDiagnoser",
    "ORIGIN_TAG",
    "PathStore",
    "PhysicalLink",
    "ProbePath",
    "ReachabilityMatrix",
    "SuspectReport",
    "UNKNOWN_TAG",
    "UhNode",
    "VARIANTS",
    "WithdrawalObservation",
    "as_projection",
    "bayesian_diagnosis",
    "diagnosability",
    "exact_hitting_set",
    "greedy_hitting_set",
    "indistinguishable_classes",
    "ip_link",
    "is_unidentified",
    "logicalize",
    "nd_bgpigp",
    "nd_edge",
    "nd_edge_multipath",
    "nd_lg",
    "physical_link",
    "rank_suspect_ases",
    "physical_metrics",
    "physical_projection",
    "reroute_sets",
    "scfs",
    "sensitivity",
    "sort_key",
    "specificity",
    "suspect_working_pairs",
    "tomo",
    "uh_tags",
    "uniform_prior",
    "undirected_projection",
]
