"""Control-plane observations of AS-X, as the diagnosis layer sees them.

The diagnosis algorithms speak addresses, not simulator ids: the
measurement collector converts the simulator's IGP events and BGP
withdrawal log into these address-level observations.  A real deployment
would produce the same records from the ISP's IS-IS listener and BGP route
monitor, which is why the types live in :mod:`repro.core` rather than the
simulator package.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Tuple

__all__ = ["IgpLinkDownObservation", "WithdrawalObservation", "ControlPlaneView"]


@dataclass(frozen=True)
class IgpLinkDownObservation:
    """An IGP "link down" message for one intradomain link of AS-X.

    Endpoints are the two routers' canonical addresses.
    """

    address_a: str
    address_b: str


@dataclass(frozen=True)
class WithdrawalObservation:
    """A BGP withdrawal received by one of AS-X's border routers.

    ``at_address`` is AS-X's router on the eBGP session, ``from_address``
    the neighbour router that sent the withdrawal, ``prefix`` the withdrawn
    destination block.  §3.3 only uses withdrawals "for the most specific
    prefix known for a destination"; the collector guarantees that.
    """

    prefix: str
    at_address: str
    from_address: str
    from_asn: int

    def covers(self, address: str) -> bool:
        """True when ``address`` falls inside the withdrawn prefix."""
        return ipaddress.ip_address(address) in ipaddress.ip_network(self.prefix)


@dataclass(frozen=True)
class ControlPlaneView:
    """Everything AS-X's control plane contributed for one event."""

    asx_asn: int
    igp_link_down: Tuple[IgpLinkDownObservation, ...] = ()
    withdrawals: Tuple[WithdrawalObservation, ...] = ()

    def is_empty(self) -> bool:
        """True when the control plane saw nothing useful."""
        return not (self.igp_link_down or self.withdrawals)
