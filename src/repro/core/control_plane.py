"""Control-plane observations of AS-X, as the diagnosis layer sees them.

The diagnosis algorithms speak addresses, not simulator ids: the
measurement collector converts the simulator's IGP events and BGP
withdrawal log into these address-level observations.  A real deployment
would produce the same records from the ISP's IS-IS listener and BGP route
monitor, which is why the types live in :mod:`repro.core` rather than the
simulator package.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Tuple

__all__ = ["IgpLinkDownObservation", "WithdrawalObservation", "ControlPlaneView"]


@dataclass(frozen=True)
class IgpLinkDownObservation:
    """An IGP "link down" message for one intradomain link of AS-X.

    Endpoints are the two routers' canonical addresses.  ``seq`` is the
    collector-assigned arrival sequence number (``-1`` = unsequenced);
    :mod:`repro.validate` checks sequenced feed streams for monotonic
    order and duplicates.
    """

    address_a: str
    address_b: str
    seq: int = -1


@dataclass(frozen=True)
class WithdrawalObservation:
    """A BGP withdrawal received by one of AS-X's border routers.

    ``at_address`` is AS-X's router on the eBGP session, ``from_address``
    the neighbour router that sent the withdrawal, ``prefix`` the withdrawn
    destination block.  §3.3 only uses withdrawals "for the most specific
    prefix known for a destination"; the collector guarantees that.
    ``seq`` is the collector-assigned arrival sequence number (``-1`` =
    unsequenced), screened by :mod:`repro.validate`.
    """

    prefix: str
    at_address: str
    from_address: str
    from_asn: int
    seq: int = -1

    def covers(self, address: str) -> bool:
        """True when ``address`` falls inside the withdrawn prefix."""
        return ipaddress.ip_address(address) in ipaddress.ip_network(self.prefix)


@dataclass(frozen=True)
class ControlPlaneView:
    """Everything AS-X's control plane contributed for one event.

    A lossy collector feed can silently eat messages; the loss/delay
    counters make that visible to the diagnosis layer and the reports.
    ``withdrawals_lost``/``igp_lost`` messages never arrived at all;
    ``*_delayed`` ones arrived after the diagnosis deadline — either
    way they are absent from the observation tuples, and the algorithms
    must (and do) treat the feed as best-effort rather than complete.
    """

    asx_asn: int
    igp_link_down: Tuple[IgpLinkDownObservation, ...] = ()
    withdrawals: Tuple[WithdrawalObservation, ...] = ()
    withdrawals_lost: int = 0
    withdrawals_delayed: int = 0
    igp_lost: int = 0
    igp_delayed: int = 0

    def is_empty(self) -> bool:
        """True when the control plane saw nothing useful."""
        return not (self.igp_link_down or self.withdrawals)

    def is_degraded(self) -> bool:
        """True when the feed is known to have missed messages."""
        return bool(
            self.withdrawals_lost
            or self.withdrawals_delayed
            or self.igp_lost
            or self.igp_delayed
        )
