"""Unidentified-link clustering (§3.4, step 2).

Two unidentified links observed on different traceroutes may well be the
same physical link hiding in a blocked AS.  The paper's three rules decide
when to treat them as one:

(i)   corresponding endpoints carry the same AS tag (identified endpoints
      must be the same address; UH endpoints must have equal, non-empty
      candidate-AS tags);
(ii)  the two links do not occur on the same traceroute (a single trace
      never crosses one link twice);
(iii) they appear in the same number of failure sets (either both zero or
      both one — an unidentified link lies on exactly one path, so it can
      be in at most one failure set).

The cluster of a link feeds the greedy score: a candidate explains the
failure sets of everything clustered with it.

Implementation note: rules (i) and (iii) define an equivalence relation, so
links are bucketed by their *compatibility key* (endpoint classes +
failure-set count) and rule (ii) is applied as a per-trace exclusion inside
each bucket.  Links sharing a bucket and a trace share one cluster object,
which keeps the construction near-linear instead of quadratic — at 80 %
blocking a mesh easily produces thousands of unidentified links.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core.linkspace import (
    Endpoint,
    IpLink,
    LinkToken,
    UhNode,
    is_unidentified,
)

__all__ = ["build_clusters"]

TokenSet = FrozenSet[LinkToken]


def build_clusters(
    tokens: Sequence[LinkToken],
    failure_sets: Sequence[TokenSet],
    tags: Mapping[UhNode, FrozenSet[int]],
) -> Dict[LinkToken, TokenSet]:
    """linkCluster(l) for every unidentified link among ``tokens``.

    Identified links are absent from the result (their cluster is empty),
    as are unidentified links whose UH endpoints have empty ("unknown")
    tags — clustering unknowns together would merge arbitrary dark links
    across the whole internetwork.
    """
    unidentified: List[IpLink] = [
        t for t in tokens if is_unidentified(t)  # type: ignore[misc]
    ]
    fail_count = {
        t: sum(1 for s in failure_sets if t in s) for t in unidentified
    }

    # Bucket by rules (i) + (iii); None key = unclusterable.
    buckets: Dict[Tuple, List[IpLink]] = {}
    for link in unidentified:
        key = _compat_key(link, fail_count[link], tags)
        if key is not None:
            buckets.setdefault(key, []).append(link)

    clusters: Dict[LinkToken, TokenSet] = {}
    for members in buckets.values():
        if len(members) < 2:
            continue
        by_trace: Dict[Tuple[str, str, str], List[IpLink]] = {}
        for link in members:
            by_trace.setdefault(_trace_identity(link), []).append(link)
        all_members = frozenset(members)
        for trace, trace_members in by_trace.items():
            # Rule (ii): exclude links observed on the same traceroute.
            cluster = all_members - frozenset(trace_members)
            if cluster:
                for link in trace_members:
                    clusters[link] = cluster
    return clusters


def _compat_key(
    link: IpLink, failures: int, tags: Mapping[UhNode, FrozenSet[int]]
) -> Optional[Tuple]:
    """Equivalence key for rules (i) and (iii); None = cannot cluster."""
    endpoint_classes = []
    for endpoint in link.endpoints():
        cls = _endpoint_class(endpoint, tags)
        if cls is None:
            return None
        endpoint_classes.append(cls)
    return (endpoint_classes[0], endpoint_classes[1], failures)


def _endpoint_class(
    endpoint: Endpoint, tags: Mapping[UhNode, FrozenSet[int]]
) -> Optional[Tuple]:
    if isinstance(endpoint, str):
        return ("ip", endpoint)
    tag = tags.get(endpoint, frozenset())
    if not tag:
        return None  # unknown AS: never compatible
    return ("tag", tuple(sorted(tag)))


def _trace_identity(link: IpLink) -> Tuple[str, str, str]:
    """(src, dst, epoch) of the single traceroute an unidentified link is on."""
    for endpoint in link.endpoints():
        if isinstance(endpoint, UhNode):
            return (endpoint.src, endpoint.dst, endpoint.epoch)
    raise AssertionError("unidentified link without a UH endpoint")
