"""The diagnosability metric D(G) (§4, "Sensor placement and
diagnosability").

For each link l of the inferred graph, its hitting set h(l) is the set of
probe pairs traversing it.  Links sharing the same hitting set are
indistinguishable: any of them failing produces the same reachability
matrix.  Diagnosability is the fraction of links that are distinguishable::

    D(G) = |{distinct h(l)}| / |E|

D = 1 means every single-link failure is precisely identifiable; D -> 0
means large equivalence classes of mutually confusable links.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.core.graph import InferredGraph
from repro.core.linkspace import LinkToken
from repro.core.pathset import Pair

__all__ = ["diagnosability", "indistinguishable_classes"]


def diagnosability(graph: InferredGraph) -> float:
    """D(G) = number of distinct hitting sets / number of probed links."""
    if len(graph) == 0:
        return 0.0
    distinct = {graph.traversed_by(token) for token in graph.tokens()}
    return len(distinct) / len(graph)


def indistinguishable_classes(
    graph: InferredGraph,
) -> Tuple[Tuple[LinkToken, ...], ...]:
    """Equivalence classes of links with identical hitting sets.

    Sorted largest class first; useful for understanding *why* a placement
    diagnoses poorly (the paper's "distant AS" placement produces one big
    class per inter-AS path segment).
    """
    classes: Dict[FrozenSet[Pair], List[LinkToken]] = {}
    for token in graph.tokens():
        classes.setdefault(graph.traversed_by(token), []).append(token)
    return tuple(
        tuple(links)
        for links in sorted(classes.values(), key=len, reverse=True)
    )
