"""Logical-link expansion (§3.1).

BGP export policies are configured per neighbour, so a misconfiguration
breaks an interdomain link only for the routes learned from one particular
out-neighbour.  To make such partial failures expressible in Boolean
tomography, each interdomain hop pair (u, v) of a path is replaced by a
*logical link* tagged with the AS the path continues to after v's AS.

Tag determination for the consecutive hop pair (u, v) on a path:

* u and v in the same AS (or either unmappable) → plain physical token;
* otherwise scan the hops after v for the first identified hop mapped to
  an AS different from v's AS — that AS is the tag;
* the path ends inside v's AS → ``ORIGIN_TAG`` (the routes are originated
  there, there is no out-neighbour);
* an unidentified hop interrupts the scan → ``UNKNOWN_TAG`` (the region
  beyond is dark; ND-LG handles those paths at AS granularity instead).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.linkspace import (
    ORIGIN_TAG,
    UNKNOWN_TAG,
    LinkToken,
    LogicalLink,
    ip_link,
)
from repro.core.pathset import ProbePath

__all__ = ["logicalize"]


def logicalize(
    path: ProbePath,
    asn_of: Callable[[str], Optional[int]],
    terminal_tag: Optional[int] = None,
) -> Tuple[LinkToken, ...]:
    """Token sequence of ``path`` with interdomain links expanded (§3.1).

    Intradomain hop pairs and pairs touching an unidentified hop stay
    physical (undirected); identified interdomain pairs become directed
    :class:`~repro.core.linkspace.LogicalLink` tokens.

    ``terminal_tag`` is the tag assigned when the out-neighbour scan runs
    off the end of the path.  For a complete path that genuinely means the
    routes terminate in the far AS (default ``ORIGIN_TAG``); for a
    *truncated* trace (a failed probe) the continuation is simply unknown,
    so callers pass ``UNKNOWN_TAG`` to keep untrustworthy tags out of
    exoneration sets.
    """
    if terminal_tag is None:
        terminal_tag = ORIGIN_TAG if path.reached else UNKNOWN_TAG
    hops = path.hops
    hop_asns: List[Optional[int]] = [
        asn_of(hop) if isinstance(hop, str) else None for hop in hops
    ]
    tokens: List[LinkToken] = []
    for index, (u, v) in enumerate(zip(hops, hops[1:])):
        if not (isinstance(u, str) and isinstance(v, str)):
            tokens.append(ip_link(u, v))
            continue
        asn_u, asn_v = hop_asns[index], hop_asns[index + 1]
        if asn_u is None or asn_v is None or asn_u == asn_v:
            tokens.append(ip_link(u, v))
            continue
        tag = _tag_after(hop_asns, index + 1, terminal_tag)
        tokens.append(LogicalLink(src=u, dst=v, tag=tag))
    return tuple(tokens)


def _tag_after(
    hop_asns: List[Optional[int]], v_index: int, terminal_tag: int
) -> int:
    """Out-neighbour tag: first AS after position ``v_index`` differing from
    the AS at ``v_index`` (see module docstring for the edge cases)."""
    asn_v = hop_asns[v_index]
    for asn in hop_asns[v_index + 1 :]:
        if asn is None:
            return UNKNOWN_TAG
        if asn != asn_v:
            return asn
    return terminal_tag
