"""Evaluation metrics: sensitivity and specificity (§4, "Metrics").

Link granularity::

    sensitivity = |F ∩ H| / |F|            (1 - false-negative rate)
    specificity = |(E\\F) ∩ (E\\H)| / |E\\F|  (1 - false-positive rate)

Comparisons across algorithms are made at *undirected physical*
granularity: hypotheses are projected through
:func:`~repro.core.linkspace.undirected_projection` so Tomo's directed
physical tokens and ND-edge's logical tokens land in the same space as the
simulator's ground-truth links (``DESIGN.md`` §5).  "Sensitivity and specificity can also be defined at the granularity
of ASes": :func:`as_projection` maps tokens to AS sets (UH endpoints via
their §3.4 candidate tags), feeding the same two formulas for Figures
11-12.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Mapping, Optional, Set

from repro.core.linkspace import (
    LinkToken,
    LogicalLink,
    PhysicalLink,
    UhNode,
    undirected_projection,
)
from repro.errors import DiagnosisError

__all__ = [
    "sensitivity",
    "specificity",
    "as_projection",
    "physical_metrics",
    "MetricPair",
]


def sensitivity(truth: FrozenSet, hypothesis: FrozenSet) -> float:
    """|F ∩ H| / |F|.  Raises when there is no ground truth to detect."""
    if not truth:
        raise DiagnosisError("sensitivity undefined for an empty ground truth")
    return len(truth & hypothesis) / len(truth)


def specificity(universe: FrozenSet, truth: FrozenSet, hypothesis: FrozenSet) -> float:
    """|(E\\F) ∩ (E\\H)| / |E\\F| over universe E.

    By convention 1.0 when every universe element is failed (no negatives
    to get right or wrong).
    """
    negatives = universe - truth
    if not negatives:
        return 1.0
    true_negatives = negatives - hypothesis
    return len(true_negatives) / len(negatives)


class MetricPair(tuple):
    """(sensitivity, specificity) with named access."""

    def __new__(cls, sens: float, spec: float) -> "MetricPair":
        return super().__new__(cls, (sens, spec))

    def __getnewargs__(self):
        # tuple subclasses with a custom __new__ signature need this to
        # pickle (records cross process boundaries in parallel batches).
        return (self[0], self[1])

    @property
    def sensitivity(self) -> float:
        return self[0]

    @property
    def specificity(self) -> float:
        return self[1]


def physical_metrics(
    universe: FrozenSet[PhysicalLink],
    truth: FrozenSet[PhysicalLink],
    hypothesis_tokens: Iterable[LinkToken],
) -> MetricPair:
    """Sensitivity/specificity after undirected physical projection.

    Ground truth is physical (a fibre cut kills both directions), so the
    directed hypothesis tokens are collapsed onto undirected
    :class:`~repro.core.linkspace.PhysicalLink` pairs before comparison;
    ``universe`` and ``truth`` are already physical (the experiment runner
    produces them from the simulator's ground truth).
    """
    hypothesis = undirected_projection(hypothesis_tokens)
    return MetricPair(
        sensitivity(truth, hypothesis),
        specificity(universe, truth, hypothesis),
    )


def as_projection(
    tokens: Iterable[LinkToken],
    asn_of: Callable[[str], Optional[int]],
    uh_tags: Optional[Mapping[UhNode, FrozenSet[int]]] = None,
) -> FrozenSet[int]:
    """Project link tokens onto the ASes they (may) belong to.

    Identified endpoints map through ``asn_of``; UH endpoints contribute
    their candidate-AS tags (ambiguous tags contribute every candidate —
    which is precisely how ND-LG accumulates its AS-level false positives
    in Figure 11).
    """
    tags = uh_tags or {}
    ases: Set[int] = set()
    for token in tokens:
        if isinstance(token, LogicalLink):
            endpoints = (token.src, token.dst)
        else:
            endpoints = token.endpoints()
        for endpoint in endpoints:
            if isinstance(endpoint, str):
                asn = asn_of(endpoint)
                if asn is not None:
                    ases.add(asn)
            else:
                ases.update(tags.get(endpoint, frozenset()))
    return frozenset(ases)
