"""The inferred graph G: union of traceroute paths, with traversal info.

§2.2: "the topology graph G is inferred from the union of these traceroute
paths".  For diagnosability (§4) we additionally need, per link, the set of
probe pairs traversing it — the link's *hitting set* h(l).  The graph can
be built at physical granularity (:meth:`InferredGraph.from_paths`) or at
logical granularity (:meth:`InferredGraph.from_logical_paths`), the latter
applying the §3.1 logical-link expansion.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.core.linkspace import LinkToken, sort_key
from repro.core.logical import logicalize
from repro.core.pathset import Pair, ProbePath

__all__ = ["InferredGraph"]


class InferredGraph:
    """Union of probe paths with per-link traversal sets."""

    def __init__(self) -> None:
        self._traversals: Dict[LinkToken, Set[Pair]] = {}

    # -------------------------------------------------------------- builders

    @classmethod
    def from_paths(cls, paths: Iterable[ProbePath]) -> "InferredGraph":
        """Physical-granularity graph: tokens are directed IpLinks."""
        graph = cls()
        for path in paths:
            graph.add_path(path.pair, path.links())
        return graph

    @classmethod
    def from_logical_paths(
        cls,
        paths: Iterable[ProbePath],
        asn_of: Callable[[str], Optional[int]],
    ) -> "InferredGraph":
        """Logical-granularity graph: interdomain links carry §3.1 tags."""
        graph = cls()
        for path in paths:
            graph.add_path(path.pair, logicalize(path, asn_of))
        return graph

    def add_path(self, pair: Pair, tokens: Iterable[LinkToken]) -> None:
        """Record that ``pair``'s path traverses ``tokens``."""
        for token in tokens:
            self._traversals.setdefault(token, set()).add(pair)

    def merge(self, other: "InferredGraph") -> "InferredGraph":
        """Union of two graphs (used to combine T- and T+ coverage)."""
        merged = InferredGraph()
        for graph in (self, other):
            for token, pairs in graph._traversals.items():
                merged._traversals.setdefault(token, set()).update(pairs)
        return merged

    # --------------------------------------------------------------- queries

    def tokens(self) -> Tuple[LinkToken, ...]:
        """All links, deterministically ordered."""
        return tuple(sorted(self._traversals, key=sort_key))

    def __contains__(self, token: LinkToken) -> bool:
        return token in self._traversals

    def __len__(self) -> int:
        return len(self._traversals)

    def traversed_by(self, token: LinkToken) -> FrozenSet[Pair]:
        """The hitting set h(l): probe pairs whose path crosses ``token``."""
        return frozenset(self._traversals.get(token, frozenset()))

    def hitting_sets(self) -> Tuple[FrozenSet[Pair], ...]:
        """h(l) for every link, in token order (repeats included)."""
        return tuple(
            frozenset(self._traversals[token]) for token in self.tokens()
        )
