"""The NetDiagnoser facade: one entry point, four variants.

Downstream users pick a variant and call
:meth:`NetDiagnoser.diagnose`; the facade dispatches to the right
algorithm and checks that the inputs the variant needs were supplied.

=============  ===============================================  =========
variant        extra inputs required                            paper
=============  ===============================================  =========
``scfs``       —  (single-source trees over T- paths)           §2.1
``tomo``       —                                                §2.4
``nd-edge``    —  (uses T+ paths from the snapshot)             §3.1-3.2
``nd-bgpigp``  ``control`` (AS-X's IGP + BGP observations)      §3.3
``nd-lg``      ``lg_lookup`` (Looking Glass path callback)      §3.4
=============  ===============================================  =========

Every variant satisfies the :class:`repro.core.protocol.Diagnoser`
protocol; sibling engines (``repro.empathy``) register alongside these
names in :mod:`repro.diagnosers`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.bitsets import vectorize_enabled
from repro.core.control_plane import ControlPlaneView
from repro.core.nd_bgpigp import nd_bgpigp
from repro.core.nd_edge import nd_edge
from repro.core.nd_lg import LgLookup, nd_lg
from repro.core.pathset import MeasurementSnapshot
from repro.core.result import DiagnosisResult
from repro.core.scfs import scfs_diagnose
from repro.core.tomo import tomo
from repro.errors import DiagnosisError

__all__ = ["NetDiagnoser", "VARIANTS"]

VARIANTS = ("scfs", "tomo", "nd-edge", "nd-bgpigp", "nd-lg")


class NetDiagnoser:
    """Configured troubleshooter.

    Parameters
    ----------
    variant:
        One of :data:`VARIANTS`.
    failure_weight / reroute_weight:
        The a/b score weights of §3.2 (both 1 in the paper).
    use_partial_traces:
        Enable the truncated-trace exoneration extension (``DESIGN.md``
        §6; not part of the paper's algorithms).
    ignore_unidentified:
        For ``nd-bgpigp`` only: drop UH links from failure sets, the §5.4
        comparison behaviour.
    """

    def __init__(
        self,
        variant: str = "nd-bgpigp",
        failure_weight: int = 1,
        reroute_weight: int = 1,
        use_partial_traces: bool = False,
        ignore_unidentified: bool = False,
    ) -> None:
        if variant not in VARIANTS:
            raise DiagnosisError(
                f"unknown variant {variant!r}; expected one of {VARIANTS}"
            )
        self.variant = variant
        self.failure_weight = failure_weight
        self.reroute_weight = reroute_weight
        self.use_partial_traces = use_partial_traces
        self.ignore_unidentified = ignore_unidentified

    @property
    def poolable(self) -> bool:
        """Whether diagnosis may run in a worker process (nd-lg holds a
        process-local Looking Glass session, so it must stay inline)."""
        return self.variant != "nd-lg"

    def diagnose(
        self,
        snapshot: MeasurementSnapshot,
        control: Optional[ControlPlaneView] = None,
        lg_lookup: Optional[LgLookup] = None,
    ) -> DiagnosisResult:
        """Diagnose one event from its measurement snapshot."""
        if not snapshot.any_failure():
            raise DiagnosisError(
                "nothing to diagnose: every probed pair is reachable "
                "(the troubleshooter is only invoked on unreachabilities)"
            )
        if self.variant == "scfs":
            result = scfs_diagnose(snapshot)
        elif self.variant == "tomo":
            result = tomo(snapshot)
        elif self.variant == "nd-edge":
            result = nd_edge(
                snapshot,
                failure_weight=self.failure_weight,
                reroute_weight=self.reroute_weight,
                use_partial_traces=self.use_partial_traces,
            )
        elif self.variant == "nd-bgpigp":
            if control is None:
                raise DiagnosisError("nd-bgpigp requires a ControlPlaneView")
            result = nd_bgpigp(
                snapshot,
                control,
                failure_weight=self.failure_weight,
                reroute_weight=self.reroute_weight,
                use_partial_traces=self.use_partial_traces,
                ignore_unidentified=self.ignore_unidentified,
            )
        else:
            if lg_lookup is None:
                raise DiagnosisError(
                    "nd-lg requires a Looking Glass lookup callback"
                )
            result = nd_lg(
                snapshot,
                control,
                lg_lookup,
                failure_weight=self.failure_weight,
                reroute_weight=self.reroute_weight,
            )
        # Provenance only — details are never golden-pinned, and the two
        # hitting-set paths are bit-identical by contract.
        result.details["vectorized"] = vectorize_enabled()
        return result
