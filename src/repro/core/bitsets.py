"""Interned token universes: set families as numpy boolean matrices.

The localisation algorithms are set-cover computations over token sets
(§2.3): candidate failure sets, reroute sets and the per-pair
reachability matrix.  At paper scale (165 ASes) plain Python sets are
fine; at internet scale (:mod:`repro.netsim.gen.powerlaw`, 5k-50k ASes)
the greedy cover-counting inner loop dominates a diagnosis.  This module
provides the shared dense representation:

* :class:`TokenUniverse` interns an ordered token universe — every
  token maps to one column index, ordered by
  :func:`~repro.core.linkspace.sort_key` so that column order *is*
  deterministic tie-break order;
* :meth:`TokenUniverse.membership_matrix` encodes a family of token
  sets as one ``(n_sets, n_tokens)`` boolean matrix;
* :func:`vectorize_enabled` gates every vectorized hot path: it is off
  when numpy is unavailable and when ``REPRO_NO_VECTORIZE=1`` is set in
  the environment (the escape hatch — the set-based reference
  implementations are kept callable forever and produce bit-identical
  results).

Encodings are memoised in a small LRU keyed by the input family, the
same way :meth:`repro.netsim.traceroute.TraceResult.addresses` memoises
its hop tuple: solvers called twice on the same instance (ablations
re-run greedy and exact on identical inputs) must not pay the interning
twice.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.linkspace import LinkToken, sort_key

try:  # numpy is a declared dependency, but the set-based paths never need it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    _np = None

__all__ = [
    "TokenUniverse",
    "InternedFamily",
    "CountingLru",
    "intern_family",
    "intern_universe",
    "vectorize_enabled",
    "numpy_available",
    "encoding_cache_counters",
    "clear_encoding_cache",
]

TokenSet = FrozenSet[LinkToken]

#: Interned universes kept; one diagnosis round touches a handful of
#: distinct families (failure sets, reroute sets, per-variant reruns).
_ENCODING_CACHE_CAPACITY = 128


def numpy_available() -> bool:
    """True when numpy imported successfully."""
    return _np is not None


def vectorize_enabled() -> bool:
    """True when the vectorized hot paths should run.

    Checked at call time (like ``REPRO_FULL_CONVERGE``): setting
    ``REPRO_NO_VECTORIZE=1`` in the environment forces the historical
    set-based implementations, which are bit-identical but slower.
    """
    if _np is None:
        return False
    return os.environ.get("REPRO_NO_VECTORIZE", "") in ("", "0")


class TokenUniverse:
    """An interned, ordered token universe with dense set encodings.

    ``tokens`` holds every token in :func:`sort_key` order;
    ``column_of`` maps a token to its column index.  Matrices built
    against the universe therefore agree on tie-break order with the
    set-based algorithms, which sort winners by ``sort_key``.
    """

    __slots__ = ("tokens", "column_of", "token_set", "_set_columns")

    def __init__(self, tokens: Iterable[LinkToken]) -> None:
        self.tokens: Tuple[LinkToken, ...] = tuple(
            sorted(set(tokens), key=sort_key)
        )
        self.column_of: Dict[LinkToken, int] = {
            token: column for column, token in enumerate(self.tokens)
        }
        # Set view: lets callers intersect large exoneration sets with the
        # universe at C speed (set ops reuse stored hashes) before touching
        # per-token column lookups.
        self.token_set: FrozenSet[LinkToken] = frozenset(self.tokens)
        self._set_columns: Dict[FrozenSet[LinkToken], List[int]] = {}

    def __len__(self) -> int:
        return len(self.tokens)

    def __contains__(self, token: LinkToken) -> bool:
        return token in self.column_of

    def membership_matrix(self, sets: Sequence[TokenSet]):
        """Encode ``sets`` as an ``(len(sets), len(self))`` bool matrix.

        Tokens outside the universe are ignored (callers build the
        universe from the same family, so none are in practice).
        """
        if _np is None:  # pragma: no cover - guarded by vectorize_enabled
            raise RuntimeError("numpy is unavailable; use the set-based path")
        matrix = _np.zeros((len(sets), len(self.tokens)), dtype=bool)
        column_of = self.column_of
        for row, tokens in enumerate(sets):
            for token in tokens:
                column = column_of.get(token)
                if column is not None:
                    matrix[row, column] = True
        return matrix

    def columns(self, tokens: Iterable[LinkToken]) -> List[int]:
        """Column indices of the given tokens (unknown tokens skipped)."""
        column_of = self.column_of
        out: List[int] = []
        for token in tokens:
            column = column_of.get(token)
            if column is not None:
                out.append(column)
        return out

    def columns_of_set(self, tokens: FrozenSet[LinkToken]) -> List[int]:
        """Memoised :meth:`columns` for frozensets (cluster member lookups
        recur with the same frozenset on every solver call)."""
        cached = self._set_columns.get(tokens)
        if cached is None:
            cached = self.columns(tokens)
            self._set_columns[tokens] = cached
        return cached


class InternedFamily:
    """One memoised set family: its universe and its dense encoding.

    The membership matrix is built lazily and marked read-only — every
    consumer that needs to mutate (e.g. cluster expansion in the greedy
    solver) must copy first.
    """

    __slots__ = ("sets", "universe", "_matrix", "_cluster_key", "_cluster_matrix")

    def __init__(self, sets: Tuple[TokenSet, ...]) -> None:
        self.sets = sets
        self.universe = TokenUniverse(
            token for tokens in sets for token in tokens
        )
        self._matrix = None
        self._cluster_key = None
        self._cluster_matrix = None

    def matrix(self):
        """The family's membership matrix (shared, read-only)."""
        if self._matrix is None:
            self._matrix = self.universe.membership_matrix(self.sets)
            self._matrix.setflags(write=False)
        return self._matrix

    def effective_matrix(self, cluster_of):
        """The cluster-expanded matrix (§3.4): a column also hits every
        set any of its cluster siblings is in.

        Columns are grouped by cluster so each distinct cluster costs one
        member-union and one broadcast OR instead of one op per column.
        Single-slot memo keyed by ``cluster_of``'s identity: repeated
        solver calls on the same instance (ablations, benchmarks) pass
        the same callable, and a cluster map never mutates between them.
        """
        if cluster_of is None:
            return self.matrix()
        if self._cluster_key is cluster_of:
            return self._cluster_matrix
        matrix = self.matrix()
        universe = self.universe
        cluster_columns: Dict[TokenSet, List[int]] = {}
        for column, token in enumerate(universe.tokens):
            cluster = cluster_of(token)
            if cluster:
                cluster_columns.setdefault(cluster, []).append(column)
        if not cluster_columns:
            effective = matrix
        else:
            effective = matrix.copy()
            for cluster, group in cluster_columns.items():
                member_cols = universe.columns_of_set(cluster)
                if member_cols:
                    union = matrix[:, member_cols].any(axis=1)
                    effective[:, group] |= union[:, None]
            effective.setflags(write=False)
        self._cluster_key = cluster_of
        self._cluster_matrix = effective
        return effective


class CountingLru:
    """Tiny LRU with observable hit/miss counters.

    The substrate layer has :class:`repro.netsim.cache.LruCache`; the
    algorithm layer keeps this minimal twin so ``core`` stays free of
    ``netsim`` imports.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._data: "OrderedDict" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0


_encodings = CountingLru(_ENCODING_CACHE_CAPACITY)


def intern_family(sets: Sequence[TokenSet]) -> InternedFamily:
    """The interned encoding of a set family (memoised).

    The key is the family itself as an (order-sensitive) tuple — cheap
    to hash relative to re-sorting the union, and exact: a repeated call
    on the same instance returns the same :class:`InternedFamily`
    object, matrix included.
    """
    key = tuple(sets)
    cached = _encodings.get(key)
    if cached is not None:
        return cached
    family = InternedFamily(key)
    _encodings.put(key, family)
    return family


def intern_universe(sets: Sequence[TokenSet]) -> TokenUniverse:
    """The interned :class:`TokenUniverse` of a set family (memoised)."""
    return intern_family(sets).universe


def encoding_cache_counters() -> Dict[str, int]:
    """Hit/miss counters of the universe-interning cache."""
    return {"hits": _encodings.hits, "misses": _encodings.misses}


def clear_encoding_cache() -> None:
    """Drop every interned universe (tests use this for isolation)."""
    _encodings.clear()
