"""The ``Diagnoser`` protocol: the shape every diagnosis engine satisfies.

Everything that can turn a :class:`~repro.core.pathset.MeasurementSnapshot`
into a :class:`~repro.core.result.DiagnosisResult` — the paper's
:class:`~repro.core.diagnoser.NetDiagnoser` facade, the traceroute-empathy
engine (:mod:`repro.empathy`), and the ensemble wrapper — implements this
structural protocol.  Downstream code (experiment runner, streaming engine,
figures, CLIs) depends only on the protocol, never on a concrete class, so
new engines plug in by registering a constructor in :mod:`repro.diagnosers`.

The two optional keyword inputs mirror the paper's information tiers: a
diagnoser that does not use control-plane observations or Looking Glass
callbacks simply ignores them.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Protocol, runtime_checkable

from repro.core.control_plane import ControlPlaneView
from repro.core.pathset import MeasurementSnapshot
from repro.core.result import DiagnosisResult

__all__ = ["Diagnoser", "LgLookupLike"]

#: Looking Glass callback shape (``repro.core.nd_lg.LgLookup`` compatible).
LgLookupLike = Callable[..., Any]


@runtime_checkable
class Diagnoser(Protocol):
    """Structural interface of every diagnosis engine.

    Attributes
    ----------
    variant:
        Stable algorithm name (``"nd-edge"``, ``"empathy"``, ...) — used
        in journal fingerprints, report labels and empty-result
        placeholders, so it must be a plain string constant per instance.
    poolable:
        True when :meth:`diagnose` may run in a worker process: the
        instance and its inputs must be picklable and hold no process-
        local state (Looking Glass sessions are the canonical exception).
    """

    variant: str
    poolable: bool

    def diagnose(
        self,
        snapshot: MeasurementSnapshot,
        control: Optional[ControlPlaneView] = None,
        lg_lookup: Optional[LgLookupLike] = None,
    ) -> DiagnosisResult:
        """Diagnose one event from its measurement snapshot."""
        ...
