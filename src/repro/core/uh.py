"""Mapping unidentified hops to ASes via Looking Glasses (§3.4, step 1).

A traceroute through blocking ASes contains runs of stars.  To reason at
AS granularity, each star must be attributed to a candidate set of ASes:

1. obtain the AS path for the probe's destination from a Looking Glass —
   the source AS's LG if available, otherwise "the first available Looking
   Glass on the path" (only LGs at or before the dark run can see it);
2. locate the identified ASes bracketing the run inside that AS path; the
   ASes strictly between them are the run's candidate set (a single AS
   gives an unambiguous tag, several give a combined tag like {B, D});
3. runs that cannot be bracketed (no LG answered, or the LG path disagrees
   with the traceroute) get the empty tag — "unknown".
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.linkspace import UhNode
from repro.core.pathset import ProbePath

__all__ = ["LgPathLookup", "uh_tags"]

#: Callable answering "AS path from this AS towards this path's destination"
#: (bound to an epoch and a destination by the caller); ``None`` when the
#: AS has no Looking Glass or no route.
LgPathLookup = Callable[[int], Optional[Tuple[int, ...]]]


def uh_tags(
    path: ProbePath,
    asn_of: Callable[[str], Optional[int]],
    lg_as_path: LgPathLookup,
) -> Dict[UhNode, FrozenSet[int]]:
    """Candidate-AS tags for every UH node of one probe path."""
    hops = path.hops
    hop_asns: List[Optional[int]] = [
        asn_of(hop) if isinstance(hop, str) else None for hop in hops
    ]
    tags: Dict[UhNode, FrozenSet[int]] = {}
    for start, end in _uh_runs(hops):
        prev_asn = _last_identified_asn(hop_asns, before=start)
        next_asn = _first_identified_asn(hop_asns, at_or_after=end + 1)
        as_path = _pick_lg_path(hop_asns, start, lg_as_path)
        candidates = _bracket(as_path, prev_asn, next_asn)
        for index in range(start, end + 1):
            node = hops[index]
            assert isinstance(node, UhNode)
            tags[node] = candidates
    return tags


def _uh_runs(hops: Sequence) -> List[Tuple[int, int]]:
    """Maximal runs of UH hops as (first index, last index) pairs."""
    runs: List[Tuple[int, int]] = []
    start: Optional[int] = None
    for index, hop in enumerate(hops):
        if not isinstance(hop, str):
            if start is None:
                start = index
        elif start is not None:
            runs.append((start, index - 1))
            start = None
    if start is not None:
        runs.append((start, len(hops) - 1))
    return runs


def _last_identified_asn(
    hop_asns: Sequence[Optional[int]], before: int
) -> Optional[int]:
    for index in range(before - 1, -1, -1):
        if hop_asns[index] is not None:
            return hop_asns[index]
    return None


def _first_identified_asn(
    hop_asns: Sequence[Optional[int]], at_or_after: int
) -> Optional[int]:
    for index in range(at_or_after, len(hop_asns)):
        if hop_asns[index] is not None:
            return hop_asns[index]
    return None


def _pick_lg_path(
    hop_asns: Sequence[Optional[int]],
    run_start: int,
    lg_as_path: LgPathLookup,
) -> Optional[Tuple[int, ...]]:
    """The AS path from the first available LG at or before the dark run.

    An LG located after the run reports a path that never traverses the
    dark region, so only ASes of identified hops *before* the run are
    useful (the source AS first, per the paper).
    """
    tried = set()
    for index in range(run_start):
        asn = hop_asns[index]
        if asn is None or asn in tried:
            continue
        tried.add(asn)
        as_path = lg_as_path(asn)
        if as_path is not None:
            return as_path
    return None


def _bracket(
    as_path: Optional[Tuple[int, ...]],
    prev_asn: Optional[int],
    next_asn: Optional[int],
) -> FrozenSet[int]:
    """ASes strictly between the bracketing ASes on the LG-reported path."""
    if as_path is None or prev_asn is None:
        return frozenset()
    try:
        prev_index = as_path.index(prev_asn)
    except ValueError:
        return frozenset()  # the LG path disagrees with the traceroute
    if next_asn is None:
        return frozenset(as_path[prev_index + 1 :])
    try:
        next_index = as_path.index(next_asn, prev_index + 1)
    except ValueError:
        return frozenset()
    return frozenset(as_path[prev_index + 1 : next_index])
