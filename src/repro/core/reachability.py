"""The reachability matrix R of §2.3.

``R[i][j] = 1`` when the probe from sensor i to sensor j reached, else 0.
Internally keyed by sensor addresses rather than indices so it composes
directly with :class:`~repro.core.pathset.PathStore`; a dense index-based
view is available for display and tests.

The matrix is immutable after construction, so the derived views (sorted
pairs, sensor list, the dense matrix itself) are computed once and
memoised — at internet scale (:mod:`repro.netsim.gen.powerlaw`) a full
mesh holds thousands of pairs and the diagnosis variants iterate them
repeatedly.  The dense view is assembled through numpy when
:func:`~repro.core.bitsets.vectorize_enabled` allows (bit-identical to
the list-of-lists construction; ``REPRO_NO_VECTORIZE=1`` forces the
historical loop).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.bitsets import vectorize_enabled
from repro.core.pathset import Pair, PathStore
from repro.errors import DiagnosisError

try:  # gated: the set-based path never needs numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None

__all__ = ["ReachabilityMatrix"]


class ReachabilityMatrix:
    """Boolean end-to-end status of every probed sensor pair."""

    def __init__(self, status: Dict[Pair, bool]) -> None:
        self._status = dict(status)
        self._pairs_memo: Optional[Tuple[Pair, ...]] = None
        self._sensors_memo: Optional[Tuple[str, ...]] = None
        self._dense_memo: Optional[List[List[int]]] = None

    @classmethod
    def from_store(cls, store: PathStore) -> "ReachabilityMatrix":
        """Build R from a measurement round (normally the T+ round)."""
        return cls({path.pair: path.reached for path in store.paths()})

    def is_up(self, src: str, dst: str) -> bool:
        """R_ij as a boolean."""
        try:
            return self._status[(src, dst)]
        except KeyError:
            raise DiagnosisError(f"pair ({src}, {dst}) was never probed") from None

    def pairs(self) -> Tuple[Pair, ...]:
        """All probed pairs, sorted."""
        if self._pairs_memo is None:
            self._pairs_memo = tuple(sorted(self._status))
        return self._pairs_memo

    def failed_pairs(self) -> Tuple[Pair, ...]:
        """Pairs with R_ij = 0."""
        return tuple(p for p in self.pairs() if not self._status[p])

    def working_pairs(self) -> Tuple[Pair, ...]:
        """Pairs with R_ij = 1."""
        return tuple(p for p in self.pairs() if self._status[p])

    def sensors(self) -> Tuple[str, ...]:
        """Every sensor address appearing in the matrix, sorted."""
        if self._sensors_memo is None:
            seen = set()
            for src, dst in self._status:
                seen.add(src)
                seen.add(dst)
            self._sensors_memo = tuple(sorted(seen))
        return self._sensors_memo

    def dense(self) -> List[List[int]]:
        """Index-based dense matrix (diagonal = 1 by convention)."""
        if self._dense_memo is None:
            sensors = self.sensors()
            index = {address: k for k, address in enumerate(sensors)}
            if vectorize_enabled():
                matrix = np.ones((len(sensors), len(sensors)), dtype=np.int64)
                for (src, dst), up in self._status.items():
                    matrix[index[src], index[dst]] = 1 if up else 0
                self._dense_memo = matrix.tolist()
            else:
                rows = [[1] * len(sensors) for _ in sensors]
                for (src, dst), up in self._status.items():
                    rows[index[src]][index[dst]] = 1 if up else 0
                self._dense_memo = rows
        return self._dense_memo

    def __len__(self) -> int:
        return len(self._status)
