"""The reachability matrix R of §2.3.

``R[i][j] = 1`` when the probe from sensor i to sensor j reached, else 0.
Internally keyed by sensor addresses rather than indices so it composes
directly with :class:`~repro.core.pathset.PathStore`; a dense index-based
view is available for display and tests.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.pathset import Pair, PathStore
from repro.errors import DiagnosisError

__all__ = ["ReachabilityMatrix"]


class ReachabilityMatrix:
    """Boolean end-to-end status of every probed sensor pair."""

    def __init__(self, status: Dict[Pair, bool]) -> None:
        self._status = dict(status)

    @classmethod
    def from_store(cls, store: PathStore) -> "ReachabilityMatrix":
        """Build R from a measurement round (normally the T+ round)."""
        return cls({path.pair: path.reached for path in store.paths()})

    def is_up(self, src: str, dst: str) -> bool:
        """R_ij as a boolean."""
        try:
            return self._status[(src, dst)]
        except KeyError:
            raise DiagnosisError(f"pair ({src}, {dst}) was never probed") from None

    def pairs(self) -> Tuple[Pair, ...]:
        """All probed pairs, sorted."""
        return tuple(sorted(self._status))

    def failed_pairs(self) -> Tuple[Pair, ...]:
        """Pairs with R_ij = 0."""
        return tuple(p for p in self.pairs() if not self._status[p])

    def working_pairs(self) -> Tuple[Pair, ...]:
        """Pairs with R_ij = 1."""
        return tuple(p for p in self.pairs() if self._status[p])

    def sensors(self) -> Tuple[str, ...]:
        """Every sensor address appearing in the matrix, sorted."""
        seen = set()
        for src, dst in self._status:
            seen.add(src)
            seen.add(dst)
        return tuple(sorted(seen))

    def dense(self) -> List[List[int]]:
        """Index-based dense matrix (diagonal = 1 by convention)."""
        sensors = self.sensors()
        index = {address: k for k, address in enumerate(sensors)}
        matrix = [[1] * len(sensors) for _ in sensors]
        for (src, dst), up in self._status.items():
            matrix[index[src]][index[dst]] = 1 if up else 0
        return matrix

    def __len__(self) -> int:
        return len(self._status)
