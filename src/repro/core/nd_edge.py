"""ND-edge: NetDiagnoser from end-to-end probes only (§3.1-3.2).

ND-edge extends Tomo with the two edge-data features:

* the graph and all constraint sets use **logical links**, so router
  misconfigurations are expressible (§3.1);
* **post-failure traceroutes** feed the working-path constraints (current
  paths, not stale ones) and produce **reroute sets** that enter the
  greedy score with weight ``b`` (§3.2, a = b = 1 by default).

The optional ``use_partial_traces`` extension (not in the paper; see
``DESIGN.md`` §6) additionally exonerates the links a *failed* probe's
truncated T+ trace demonstrably crossed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Set

from repro.core.graph import InferredGraph
from repro.core.hitting_set import greedy_hitting_set
from repro.core.linkspace import ORIGIN_TAG, UNKNOWN_TAG, LinkToken, LogicalLink
from repro.core.logical import logicalize
from repro.core.pathset import MeasurementSnapshot, Pair
from repro.core.reroute import reroute_sets
from repro.core.result import DiagnosisResult

__all__ = ["EdgeInputs", "build_edge_inputs", "nd_edge"]

TokenSet = FrozenSet[LinkToken]


@dataclass
class EdgeInputs:
    """Everything the edge data contributes to a greedy run.

    Shared by ND-edge, ND-bgpigp and ND-LG, which differ only in the extra
    constraints (control plane, UH clusters) they layer on top.
    """

    failure_sets: Dict[Pair, TokenSet]
    working_excluded: TokenSet
    reroute_map: Dict[Pair, TokenSet]
    graph: InferredGraph
    partial_exonerated: TokenSet = frozenset()
    logical_clusters: Dict[LinkToken, TokenSet] = None  # type: ignore[assignment]

    def excluded(self) -> TokenSet:
        """Combined exoneration set from edge data."""
        return self.working_excluded | self.partial_exonerated

    def cluster_of(self, token: LinkToken) -> TokenSet:
        """Same-physical-link logical siblings of ``token`` (see
        :func:`physical_clusters`)."""
        if not self.logical_clusters:
            return frozenset()
        return self.logical_clusters.get(token, frozenset())


def physical_clusters(
    token_sets: Iterable[Iterable[LinkToken]],
) -> Dict[LinkToken, TokenSet]:
    """Cluster logical tokens that annotate the same directed physical link.

    A physical failure of an interdomain link breaks *every* logical link
    over it, but each failed/rerouted path contributes evidence under its
    own destination-dependent tag.  Without aggregation the link's greedy
    score fragments across tags while intradomain links (untagged)
    accumulate theirs — and the true link loses ties it must win (the
    paper's near-one ND-edge sensitivity is unreachable otherwise; see
    ``DESIGN.md`` §5).  Scoring therefore groups logical tokens by
    (src, dst); *exclusion stays tag-exact*, which is what preserves the
    misconfiguration feature of §3.1.
    """
    groups: Dict[tuple, Set[LinkToken]] = {}
    for tokens in token_sets:
        for token in tokens:
            if isinstance(token, LogicalLink):
                groups.setdefault((token.src, token.dst), set()).add(token)
    clusters: Dict[LinkToken, TokenSet] = {}
    for members in groups.values():
        if len(members) < 2:
            continue
        for token in members:
            clusters[token] = frozenset(members - {token})
    return clusters


def build_edge_inputs(
    snapshot: MeasurementSnapshot,
    use_partial_traces: bool = False,
    drop_unidentified_from_failures: bool = False,
) -> EdgeInputs:
    """Derive the logical-granularity greedy inputs from a snapshot.

    ``drop_unidentified_from_failures`` implements the "ND-bgpigp simply
    ignores any unidentified link" behaviour of §5.4's comparison: failure
    sets keep identified tokens only (ND-LG keeps them and clusters them
    instead).
    """
    asn_of = snapshot.asn_of

    failure_sets: Dict[Pair, TokenSet] = {}
    for pair in snapshot.failed_pairs():
        tokens = logicalize(snapshot.before.get(pair), asn_of)
        if drop_unidentified_from_failures:
            tokens = tuple(t for t in tokens if t.identified)
        if tokens:
            failure_sets[pair] = frozenset(tokens)

    working: Set[LinkToken] = set()
    for pair in snapshot.working_pairs():
        working.update(logicalize(snapshot.after.get(pair), asn_of))

    partial: Set[LinkToken] = set()
    if use_partial_traces:
        for pair in snapshot.failed_pairs():
            truncated = snapshot.after.get(pair)
            # Terminal-tag rule for truncated traces: normally the
            # continuation beyond the last hop is unknown, but when the
            # trace already died *inside the destination sensor's AS* the
            # route group is certain — it terminates there (ORIGIN).
            last = truncated.hops[-1]
            dst_asn = asn_of(truncated.dst)
            last_asn = asn_of(last) if isinstance(last, str) else None
            terminal = (
                ORIGIN_TAG
                if last_asn is not None and last_asn == dst_asn
                else UNKNOWN_TAG
            )
            for token in logicalize(truncated, asn_of, terminal_tag=terminal):
                if isinstance(token, LogicalLink) and token.tag == UNKNOWN_TAG:
                    continue  # tag not observable from a truncated trace
                if not token.identified:
                    continue
                partial.add(token)

    graph = InferredGraph.from_logical_paths(
        snapshot.before.paths(), asn_of
    ).merge(InferredGraph.from_logical_paths(snapshot.after.paths(), asn_of))

    reroute_map = reroute_sets(snapshot, logical=True)
    clusters = physical_clusters(
        list(failure_sets.values()) + list(reroute_map.values())
    )
    return EdgeInputs(
        failure_sets=failure_sets,
        working_excluded=frozenset(working),
        reroute_map=reroute_map,
        graph=graph,
        partial_exonerated=frozenset(partial),
        logical_clusters=clusters,
    )


def nd_edge(
    snapshot: MeasurementSnapshot,
    failure_weight: int = 1,
    reroute_weight: int = 1,
    use_partial_traces: bool = False,
) -> DiagnosisResult:
    """Run ND-edge on a measurement snapshot."""
    inputs = build_edge_inputs(snapshot, use_partial_traces=use_partial_traces)
    outcome = greedy_hitting_set(
        list(inputs.failure_sets.values()),
        reroute_sets=list(inputs.reroute_map.values()),
        excluded=inputs.excluded(),
        failure_weight=failure_weight,
        reroute_weight=reroute_weight,
        cluster_of=inputs.cluster_of,
    )
    return DiagnosisResult(
        algorithm="nd-edge",
        hypothesis=outcome.hypothesis,
        graph=inputs.graph,
        excluded=inputs.excluded(),
        unexplained_failures=outcome.unexplained_failures,
        unexplained_reroutes=outcome.unexplained_reroutes,
        details={
            "failure_sets": len(inputs.failure_sets),
            "reroute_sets": len(inputs.reroute_map),
            "partial_exonerated": len(inputs.partial_exonerated),
            "iterations": outcome.iterations,
        },
    )
