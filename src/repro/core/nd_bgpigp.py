"""ND-bgpigp: NetDiagnoser with AS-X's routing data (§3.3).

Two control-plane signals refine the edge-only diagnosis:

* **IGP link-down messages** directly identify dead intradomain links of
  AS-X — they are *preseeded* into the hypothesis set before the greedy
  loop runs;
* **BGP withdrawals**: a withdrawal for prefix P received over the eBGP
  session (x, n) proves the announcement was lost *beyond* n, so on every
  failed path towards a destination in P that crosses x→n, the links from
  the source up to the session are exonerated (the paper's example removes
  y4-y1, y1-x2, x2-x1 and x1-a2 from H).

Two refinements over the paper's one-sentence rule, both needed to keep
its "same sensitivity, better specificity" result:

* exoneration prunes the *failure set of that path*, not the global
  candidate pool — under multiple simultaneous failures a second failed
  link may sit upstream on the withdrawn path, and other paths' evidence
  against it must survive;
* the session link itself is *not* pruned (the paper's example removes
  x1-a2 too): an export-filter misconfiguration at the neighbour router is
  observationally identical to a forwarded withdrawal, so pruning the
  session's logical token would reintroduce false negatives for exactly
  the §3.1 failures NetDiagnoser exists to catch.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set

from repro.core.control_plane import ControlPlaneView
from repro.core.hitting_set import greedy_hitting_set
from repro.core.linkspace import LinkToken, ip_link
from repro.core.logical import logicalize
from repro.core.nd_edge import EdgeInputs, build_edge_inputs
from repro.core.pathset import MeasurementSnapshot, Pair, ProbePath
from repro.core.result import DiagnosisResult

__all__ = ["nd_bgpigp", "withdrawal_exonerations", "igp_preseed"]

TokenSet = FrozenSet[LinkToken]


def igp_preseed(
    control: ControlPlaneView, inputs: EdgeInputs
) -> TokenSet:
    """Hypothesis preseed from IGP link-down messages.

    Only links that actually appear in the probed graph enter H: a dead
    link no probe ever crossed explains nothing and would only depress
    specificity.
    """
    preseed: Set[LinkToken] = set()
    for event in control.igp_link_down:
        # The IGP message names a link, not a direction: seed whichever
        # directed tokens the probes actually crossed.
        for token in (
            ip_link(event.address_a, event.address_b),
            ip_link(event.address_b, event.address_a),
        ):
            if token in inputs.graph:
                preseed.add(token)
    return frozenset(preseed)


def withdrawal_exonerations(
    control: ControlPlaneView,
    snapshot: MeasurementSnapshot,
    failure_sets: Dict[Pair, TokenSet],
) -> Dict[Pair, TokenSet]:
    """Per-pair token removals implied by the §3.3 withdrawal rule.

    For each withdrawal (prefix P on session x→n) and each failed pair
    whose destination lies in P and whose T- path crosses the hop pair
    (x, n) in the forward direction, the tokens of that path strictly
    before the crossing are removed from *that pair's* failure set (see
    the module docstring for why the pruning is per-path and excludes the
    session token).
    """
    removals: Dict[Pair, Set[LinkToken]] = {}
    for withdrawal in control.withdrawals:
        for pair in failure_sets:
            _src, dst = pair
            if not withdrawal.covers(dst):
                continue
            path = snapshot.before.get(pair)
            crossing = _crossing_index(
                path, withdrawal.at_address, withdrawal.from_address
            )
            if crossing is None:
                continue
            tokens = logicalize(path, snapshot.asn_of)
            removals.setdefault(pair, set()).update(tokens[:crossing])
    return {pair: frozenset(tokens) for pair, tokens in removals.items()}


def _crossing_index(
    path: ProbePath, at_address: str, from_address: str
) -> Optional[int]:
    """Index k such that hops[k] == at_address and hops[k+1] == from_address
    (the data-plane direction matching an announcement n -> x)."""
    for index, (u, v) in enumerate(zip(path.hops, path.hops[1:])):
        if u == at_address and v == from_address:
            return index
    return None


def nd_bgpigp(
    snapshot: MeasurementSnapshot,
    control: ControlPlaneView,
    failure_weight: int = 1,
    reroute_weight: int = 1,
    use_partial_traces: bool = False,
    ignore_unidentified: bool = False,
) -> DiagnosisResult:
    """Run ND-bgpigp: ND-edge plus AS-X's IGP and BGP observations.

    ``ignore_unidentified`` reproduces the §5.4 comparison baseline that
    "simply ignores any unidentified link in traceroute paths".
    """
    inputs = build_edge_inputs(
        snapshot,
        use_partial_traces=use_partial_traces,
        drop_unidentified_from_failures=ignore_unidentified,
    )
    preseed = igp_preseed(control, inputs)
    removals = withdrawal_exonerations(control, snapshot, inputs.failure_sets)
    excluded = inputs.excluded() - preseed

    pruned_sets = []
    pruned_tokens = 0
    for pair, failure_set in inputs.failure_sets.items():
        removed = removals.get(pair, frozenset()) - preseed
        pruned = failure_set - removed
        pruned_tokens += len(failure_set) - len(pruned)
        pruned_sets.append(pruned if pruned else failure_set)

    outcome = greedy_hitting_set(
        pruned_sets,
        reroute_sets=list(inputs.reroute_map.values()),
        excluded=excluded,
        preseed=preseed,
        failure_weight=failure_weight,
        reroute_weight=reroute_weight,
        cluster_of=inputs.cluster_of,
    )
    return DiagnosisResult(
        algorithm="nd-bgpigp",
        hypothesis=outcome.hypothesis,
        graph=inputs.graph,
        excluded=excluded,
        unexplained_failures=outcome.unexplained_failures,
        unexplained_reroutes=outcome.unexplained_reroutes,
        details={
            "failure_sets": len(inputs.failure_sets),
            "reroute_sets": len(inputs.reroute_map),
            "igp_preseeded": len(preseed),
            "withdrawal_exonerated": pruned_tokens,
            "iterations": outcome.iterations,
        },
    )
