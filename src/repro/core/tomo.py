"""Tomo — multi-source multi-destination Boolean tomography (§2.4).

Tomo is the paper's baseline: the greedy Minimum Hitting Set heuristic run
on the *pre-failure* traceroute graph with the reachability matrix.  Its
deliberate blind spots (§2.5) are preserved faithfully:

* it uses only the T- paths — so its "working path" constraints are
  computed from stale pre-failure routes, and a rerouted-but-working pair
  wrongly exonerates the failed link it used to cross;
* it has no logical links — a misconfigured link carrying any working path
  is exonerated outright;
* it ignores reroute sets, control-plane messages and Looking Glasses.
"""

from __future__ import annotations

from typing import Set

from repro.core.graph import InferredGraph
from repro.core.hitting_set import greedy_hitting_set
from repro.core.linkspace import LinkToken
from repro.core.pathset import MeasurementSnapshot
from repro.core.result import DiagnosisResult

__all__ = ["tomo"]


def tomo(snapshot: MeasurementSnapshot) -> DiagnosisResult:
    """Run Tomo (Algorithm 1) on a measurement snapshot.

    Only ``snapshot.before`` paths and the reachability matrix are
    consulted, exactly as in §2.4.
    """
    failure_sets = [
        frozenset(snapshot.before.get(pair).links())
        for pair in snapshot.failed_pairs()
    ]
    working: Set[LinkToken] = set()
    for pair in snapshot.working_pairs():
        working.update(snapshot.before.get(pair).links())

    outcome = greedy_hitting_set(failure_sets, excluded=working)
    graph = InferredGraph.from_paths(snapshot.before.paths())
    return DiagnosisResult(
        algorithm="tomo",
        hypothesis=outcome.hypothesis,
        graph=graph,
        excluded=frozenset(working),
        unexplained_failures=outcome.unexplained_failures,
        details={
            "failure_sets": len(failure_sets),
            "iterations": outcome.iterations,
        },
    )
