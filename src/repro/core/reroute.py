"""Reroute sets (§3.2).

A pair that still works after the event but follows a different path was
*rerouted*: some link of its old path must have failed (or been withdrawn
from under it).  The reroute set R_ij is the old path's links minus the new
path's links — the candidates that can explain the reroute.  ND-edge folds
these sets into the greedy score with weight ``b`` (a = b = 1 in the
paper).
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.core.linkspace import LinkToken, is_unidentified, physical_projection
from repro.core.logical import logicalize
from repro.core.pathset import MeasurementSnapshot, Pair

__all__ = ["reroute_sets"]


def reroute_sets(
    snapshot: MeasurementSnapshot,
    logical: bool = True,
    drop_unidentified: bool = True,
) -> Dict[Pair, FrozenSet[LinkToken]]:
    """R_ij for every rerouted pair.

    ``logical`` selects the token granularity (ND-edge reasons over logical
    links).  With ``drop_unidentified``, tokens touching UH hops are
    removed from the sets: a pre-epoch UH token can never match a
    post-epoch one, so keeping them would make every blocked-AS path look
    like evidence (see ``DESIGN.md`` §5); ND-LG instead handles UHs through
    failure-set clustering.

    Comparison between the old and the new path is done at *physical*
    granularity: a logical tag legitimately changes when routing shifts
    beyond the far AS even though the link itself kept carrying the path,
    and treating a mere tag change as "this link was abandoned" would
    plant false evidence against a healthy link.  Candidate tokens whose
    physical link survives in the new path are therefore not included.
    """
    sets: Dict[Pair, FrozenSet[LinkToken]] = {}
    asn_of = snapshot.asn_of
    for pair in snapshot.rerouted_pairs():
        old_path = snapshot.before.get(pair)
        new_path = snapshot.after.get(pair)
        old_tokens = logicalize(old_path, asn_of) if logical else old_path.links()
        new_physical = physical_projection(
            logicalize(new_path, asn_of) if logical else new_path.links()
        )
        candidates = frozenset(
            token
            for token in old_tokens
            if not (physical_projection([token]) & new_physical)
            and not (drop_unidentified and is_unidentified(token))
        )
        if candidates:
            sets[pair] = candidates
    return sets
