"""Diagnosis results.

Every algorithm returns a :class:`DiagnosisResult`: the hypothesis set H,
the graph it reasoned over (the universe E for specificity), the
constraints it applied, and anything the greedy loop could not explain.
The result object also carries the projections the metrics need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Tuple

from repro.core.graph import InferredGraph
from repro.core.linkspace import LinkToken, PhysicalLink, undirected_projection

__all__ = ["DiagnosisResult"]


@dataclass
class DiagnosisResult:
    """Outcome of one diagnosis run.

    Attributes
    ----------
    algorithm:
        Variant name (``"tomo"``, ``"nd-edge"``, ``"nd-bgpigp"``,
        ``"nd-lg"``).
    hypothesis:
        H — link tokens blamed for the observed unreachabilities.
    graph:
        The inferred graph used: its token set is the universe E when
        computing specificity.
    excluded:
        Tokens ruled out (working paths, withdrawal exoneration).
    unexplained_failures / unexplained_reroutes:
        Observation sets the hypothesis could not intersect; non-empty
        means the evidence was contradictory under the constraints.
    details:
        Free-form diagnostics (counts of reroute sets used, withdrawal
        exonerations applied, UH clusters formed, ...), surfaced in
        reports and asserted on in tests.
    """

    algorithm: str
    hypothesis: FrozenSet[LinkToken]
    graph: InferredGraph
    excluded: FrozenSet[LinkToken] = frozenset()
    unexplained_failures: Tuple[FrozenSet[LinkToken], ...] = ()
    unexplained_reroutes: Tuple[FrozenSet[LinkToken], ...] = ()
    details: Dict[str, Any] = field(default_factory=dict)

    @property
    def fully_explained(self) -> bool:
        """True when every failed path and reroute was accounted for."""
        return not (self.unexplained_failures or self.unexplained_reroutes)

    def physical_hypothesis(self) -> FrozenSet[PhysicalLink]:
        """H projected to undirected physical links (metric space)."""
        return undirected_projection(self.hypothesis)

    def physical_universe(self) -> FrozenSet[PhysicalLink]:
        """E projected to undirected physical links."""
        return undirected_projection(self.graph.tokens())

    def hypothesis_size(self) -> int:
        """|H| at the algorithm's native granularity."""
        return len(self.hypothesis)
