"""Minimum Hitting Set machinery shared by every NetDiagnoser variant.

§2.3 reduces fault localisation to Minimum Hitting Set: find the smallest
link set H intersecting every failure set while avoiding every
working-path link.  The optimisation problem is NP-hard (dual of Min Set
Cover); :func:`greedy_hitting_set` implements the paper's greedy heuristic
(Algorithm 1) generalised with the extensions later sections bolt on:

* **reroute sets** (§3.2) scored with weight ``b`` against the failure
  sets' weight ``a`` (paper uses a = b = 1);
* **preseeded links** (§3.3): IGP link-down messages put links into H
  before the greedy loop starts;
* **exclusions** (§2.4 working paths, §3.3 withdrawal exoneration): links
  that may never enter the candidate set;
* **link clusters** (§3.4): an unidentified link scores — and explains —
  the failure sets of every cluster member.

Two implementations of the greedy loop exist and return bit-identical
results: the historical set-based one
(:func:`_greedy_hitting_set_python`) and a vectorized one
(:func:`_greedy_hitting_set_numpy`) that encodes the family as a numpy
boolean matrix over an interned token universe
(:mod:`repro.core.bitsets`) and replaces the per-candidate
cover-counting inner loop with column sums.  The public entry point
dispatches on :func:`~repro.core.bitsets.vectorize_enabled`
(``REPRO_NO_VECTORIZE=1`` forces the set-based path).

:func:`exact_hitting_set` is a branch-and-bound exact solver used by the
optimality-gap ablation; it is exponential and guarded by an expansion
budget.  Its result only depends on the *set* of pruned failure sets and
the budget, so repeated calls on the same instance (the ablation scores
greedy against exact on identical inputs) are served from a memo instead
of re-running the search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.bitsets import CountingLru, intern_family, vectorize_enabled
from repro.core.linkspace import LinkToken, sort_key
from repro.errors import DiagnosisError

try:  # gated: every set-based path works without numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on stripped installs
    np = None

__all__ = [
    "GreedyResult",
    "greedy_hitting_set",
    "exact_hitting_set",
    "exact_cache_counters",
    "clear_exact_cache",
]

TokenSet = FrozenSet[LinkToken]

#: Memoised exact-solver instances kept (keyed by pruned family + budget).
_EXACT_CACHE_CAPACITY = 256


@dataclass
class GreedyResult:
    """Outcome of one greedy hitting-set run.

    ``unexplained_failures`` / ``unexplained_reroutes`` are the input sets
    the hypothesis could not intersect (their candidates were all excluded
    or exhausted) — non-empty values mean the observations are mutually
    inconsistent with the exclusion constraints, which the diagnosis report
    surfaces rather than hides.
    """

    hypothesis: TokenSet
    unexplained_failures: Tuple[TokenSet, ...]
    unexplained_reroutes: Tuple[TokenSet, ...]
    iterations: int
    preseeded: TokenSet = frozenset()

    @property
    def fully_explained(self) -> bool:
        """True when every failure and reroute set is hit."""
        return not (self.unexplained_failures or self.unexplained_reroutes)


def greedy_hitting_set(
    failure_sets: Sequence[Iterable[LinkToken]],
    reroute_sets: Sequence[Iterable[LinkToken]] = (),
    excluded: Iterable[LinkToken] = (),
    preseed: Iterable[LinkToken] = (),
    failure_weight: int = 1,
    reroute_weight: int = 1,
    cluster_of: Optional[Callable[[LinkToken], TokenSet]] = None,
) -> GreedyResult:
    """Run the paper's greedy Minimum Hitting Set heuristic.

    Parameters mirror Algorithm 1 plus the NetDiagnoser extensions; see the
    module docstring.  ``cluster_of`` maps a candidate link to the set of
    links clustered with it (§3.4); links absent from any cluster should
    map to an empty set.
    """
    impl = (
        _greedy_hitting_set_numpy
        if vectorize_enabled()
        else _greedy_hitting_set_python
    )
    return impl(
        failure_sets,
        reroute_sets=reroute_sets,
        excluded=excluded,
        preseed=preseed,
        failure_weight=failure_weight,
        reroute_weight=reroute_weight,
        cluster_of=cluster_of,
    )


def _normalise(
    failure_sets: Sequence[Iterable[LinkToken]],
    reroute_sets: Sequence[Iterable[LinkToken]],
) -> Tuple[List[TokenSet], List[TokenSet]]:
    """Freeze the input families and reject empty sets."""
    failures = [frozenset(s) for s in failure_sets]
    reroutes = [frozenset(s) for s in reroute_sets]
    if any(not s for s in failures) or any(not s for s in reroutes):
        raise DiagnosisError("empty failure/reroute set: a failed path with no links")
    return failures, reroutes


def _greedy_hitting_set_python(
    failure_sets: Sequence[Iterable[LinkToken]],
    reroute_sets: Sequence[Iterable[LinkToken]] = (),
    excluded: Iterable[LinkToken] = (),
    preseed: Iterable[LinkToken] = (),
    failure_weight: int = 1,
    reroute_weight: int = 1,
    cluster_of: Optional[Callable[[LinkToken], TokenSet]] = None,
) -> GreedyResult:
    """The set-based reference implementation of Algorithm 1."""
    failures, reroutes = _normalise(failure_sets, reroute_sets)
    excluded_set: TokenSet = frozenset(excluded)
    preseed_set: TokenSet = frozenset(preseed)

    # Inverted index: token -> ids of the sets containing it.  Reroute set
    # ids are offset past the failure ids so one id space covers both.
    index: Dict[LinkToken, Set[int]] = {}
    for set_id, s in enumerate(failures + reroutes):
        for token in s:
            index.setdefault(token, set()).add(set_id)
    n_failures = len(failures)

    def ids_hit_by(token: LinkToken) -> Set[int]:
        """Set ids hit by the token or anything clustered with it."""
        hit = set(index.get(token, ()))
        if cluster_of is not None:
            cluster = cluster_of(token)
            if cluster:
                cached = cluster_hits.get(cluster)
                if cached is None:
                    cached = set()
                    for member in cluster:
                        cached |= index.get(member, set())
                    cluster_hits[cluster] = cached
                hit |= cached
        return hit

    cluster_hits: Dict[TokenSet, Set[int]] = {}
    hypothesis: Set[LinkToken] = set(preseed_set)
    unexplained: Set[int] = set(range(len(failures) + len(reroutes)))
    for token in preseed_set:
        unexplained -= ids_hit_by(token)

    candidates: Set[LinkToken] = set(index)
    candidates -= excluded_set
    candidates -= hypothesis

    iterations = 0
    while unexplained and candidates:
        iterations += 1
        best_score = 0
        scores: Dict[LinkToken, int] = {}
        hit_sets: Dict[LinkToken, FrozenSet[int]] = {}
        for token in candidates:
            hit = ids_hit_by(token) & unexplained
            if not hit:
                continue
            score = 0
            for set_id in hit:
                score += failure_weight if set_id < n_failures else reroute_weight
            scores[token] = score
            # Equivalence class on *scored* evidence only: a set whose
            # weight is zero contributes nothing to the ranking, so it
            # must not make two otherwise-identical winners look
            # distinguishable either.
            hit_sets[token] = frozenset(
                set_id
                for set_id in hit
                if (failure_weight if set_id < n_failures else reroute_weight)
            )
            if score > best_score:
                best_score = score
        if best_score <= 0:
            break  # remaining sets have no admissible candidate
        # Algorithm 1 lines 13-17: add *every* maximum-score link.  Tied
        # winners with the *same* hit-set are indistinguishable on the
        # evidence and are all blamed (that is the point of the all-ties
        # rule: the true link must not be dropped in favour of a peer of
        # its equivalence class).  But a tied winner whose sets were all
        # explained by *distinguishably different* earlier winners of the
        # same iteration carries no evidence of its own — re-scored, it
        # would no longer win — so adding it would inflate |H| beyond
        # Algorithm 1's intent.
        winners = sorted(
            (t for t, score in scores.items() if score == best_score),
            key=sort_key,
        )
        added_classes: Set[FrozenSet[int]] = set()
        for token in winners:
            explains_new = bool(ids_hit_by(token) & unexplained)
            if not explains_new and hit_sets[token] not in added_classes:
                continue
            hypothesis.add(token)
            candidates.discard(token)
            unexplained -= ids_hit_by(token)
            added_classes.add(hit_sets[token])

    all_sets = failures + reroutes
    leftover_f = [
        all_sets[set_id] for set_id in sorted(unexplained) if set_id < n_failures
    ]
    leftover_r = [
        all_sets[set_id] for set_id in sorted(unexplained) if set_id >= n_failures
    ]
    return GreedyResult(
        hypothesis=frozenset(hypothesis),
        unexplained_failures=tuple(leftover_f),
        unexplained_reroutes=tuple(leftover_r),
        iterations=iterations,
        preseeded=preseed_set,
    )


def _greedy_hitting_set_numpy(
    failure_sets: Sequence[Iterable[LinkToken]],
    reroute_sets: Sequence[Iterable[LinkToken]] = (),
    excluded: Iterable[LinkToken] = (),
    preseed: Iterable[LinkToken] = (),
    failure_weight: int = 1,
    reroute_weight: int = 1,
    cluster_of: Optional[Callable[[LinkToken], TokenSet]] = None,
) -> GreedyResult:
    """Vectorized Algorithm 1 over an interned universe.

    Bit-identical to :func:`_greedy_hitting_set_python`: columns are
    ordered by :func:`~repro.core.linkspace.sort_key`, so iterating
    winner columns in ascending order *is* the set-based tie-break, and
    the tie-equivalence classes are compared as boolean evidence vectors
    masked to nonzero-weight sets.
    """
    if np is None:  # pragma: no cover - dispatcher prevents this
        raise DiagnosisError("vectorized path requested but numpy is missing")
    failures, reroutes = _normalise(failure_sets, reroute_sets)
    excluded_set: TokenSet = frozenset(excluded)
    preseed_set: TokenSet = frozenset(preseed)
    n_failures = len(failures)
    all_sets: List[TokenSet] = failures + reroutes
    n_sets = len(all_sets)

    hypothesis: Set[LinkToken] = set(preseed_set)
    if n_sets == 0:
        return GreedyResult(
            hypothesis=frozenset(hypothesis),
            unexplained_failures=(),
            unexplained_reroutes=(),
            iterations=0,
            preseeded=preseed_set,
        )

    family = intern_family(tuple(all_sets))
    universe = family.universe
    tokens = universe.tokens
    column_of = universe.column_of
    n_tokens = len(tokens)
    matrix = family.matrix()  # (n_sets, n_tokens) bool, read-only

    # Effective hits: base membership plus cluster expansion (§3.4) — a
    # candidate also hits every set any of its cluster siblings is in.
    # Memoised on the family: re-solving the same instance skips the
    # per-token cluster walk entirely.
    effective = family.effective_matrix(cluster_of)

    # Sets whose weight is zero never enter the scored evidence classes.
    weight_nonzero = np.ones(n_sets, dtype=bool)
    if failure_weight == 0:
        weight_nonzero[:n_failures] = False
    if reroute_weight == 0:
        weight_nonzero[n_failures:] = False

    unexplained = np.ones(n_sets, dtype=bool)
    for token in preseed_set:
        column = column_of.get(token)
        if column is not None:
            unexplained &= ~effective[:, column]
        elif cluster_of is not None:
            cluster = cluster_of(token)
            if cluster:
                member_cols = universe.columns_of_set(cluster)
                if member_cols:
                    unexplained &= ~matrix[:, member_cols].any(axis=1)

    candidate = np.ones(n_tokens, dtype=bool)
    # Intersect first: exoneration sets (every working-path link) are far
    # larger than the universe, and frozenset intersection runs at C speed
    # on stored hashes.
    for token in (excluded_set | hypothesis) & universe.token_set:
        candidate[column_of[token]] = False

    eff_failures = effective[:n_failures]
    eff_reroutes = effective[n_failures:]
    iterations = 0
    while unexplained.any() and candidate.any():
        iterations += 1
        hits_f = eff_failures[unexplained[:n_failures]].sum(
            axis=0, dtype=np.int64
        )
        hits_r = eff_reroutes[unexplained[n_failures:]].sum(
            axis=0, dtype=np.int64
        )
        any_hit = (hits_f + hits_r) > 0
        scores = failure_weight * hits_f + reroute_weight * hits_r
        scored = candidate & any_hit
        if not scored.any():
            break
        best_score = int(scores[scored].max())
        if best_score <= 0:
            break  # remaining sets have no admissible candidate
        # Ascending column order == sort_key order: the all-ties rule with
        # per-evidence-class dedup, exactly as in the set-based path.
        winner_cols = np.nonzero(scored & (scores == best_score))[0]
        at_scoring = unexplained.copy()
        added_classes: Set[bytes] = set()
        for column in winner_cols:
            evidence = effective[:, column]
            class_key = (evidence & at_scoring & weight_nonzero).tobytes()
            explains_new = bool((evidence & unexplained).any())
            if not explains_new and class_key not in added_classes:
                continue
            hypothesis.add(tokens[column])
            candidate[column] = False
            unexplained &= ~evidence
            added_classes.add(class_key)

    leftover_ids = np.nonzero(unexplained)[0]
    leftover_f = [all_sets[i] for i in leftover_ids if i < n_failures]
    leftover_r = [all_sets[i] for i in leftover_ids if i >= n_failures]
    return GreedyResult(
        hypothesis=frozenset(hypothesis),
        unexplained_failures=tuple(leftover_f),
        unexplained_reroutes=tuple(leftover_r),
        iterations=iterations,
        preseeded=preseed_set,
    )


_exact_cache = CountingLru(_EXACT_CACHE_CAPACITY)

#: Cache sentinel: distinguishes "no admissible/proven solution" from a miss.
_NO_SOLUTION = object()


def exact_cache_counters() -> Dict[str, int]:
    """Hit/miss counters of the exact-solver memo."""
    return {"hits": _exact_cache.hits, "misses": _exact_cache.misses}


def clear_exact_cache() -> None:
    """Drop every memoised exact result (tests use this for isolation)."""
    _exact_cache.clear()


def exact_hitting_set(
    failure_sets: Sequence[Iterable[LinkToken]],
    excluded: Iterable[LinkToken] = (),
    max_expansions: int = 200_000,
) -> Optional[TokenSet]:
    """Exact minimum hitting set via branch and bound (memoised).

    Returns ``None`` when no admissible hitting set exists (every candidate
    of some set is excluded) or when the expansion budget truncated the
    search — callers treat both as "fall back to greedy".  A truncated
    search returns ``None`` even if *some* hitting set had already been
    found: an unexplored branch could still hold a smaller one, so
    returning the interim ``best`` would pass off a possibly non-minimal
    set as the optimum (the optimality-gap ablation would then understate
    greedy's gap).  Deterministic: branches explore candidates in
    :func:`~repro.core.linkspace.sort_key` order.

    The result depends only on the *set* of pruned failure sets and the
    budget (branching always picks the unique most-constrained set, so
    input order and duplicates are irrelevant), which makes the instance
    safely memoisable: a second call on the same instance is a cache hit
    instead of a full search.
    """
    excluded_set = frozenset(excluded)
    sets: List[TokenSet] = []
    for s in failure_sets:
        pruned = frozenset(s) - excluded_set
        if not pruned:
            return None
        sets.append(pruned)
    if not sets:
        return frozenset()

    memo_key = (frozenset(sets), max_expansions)
    cached = _exact_cache.get(memo_key)
    if cached is not None:
        return cached if cached is not _NO_SOLUTION else None

    best: List[Optional[FrozenSet[LinkToken]]] = [None]
    budget = [max_expansions]
    truncated = [False]

    def search(chosen: Set[LinkToken], remaining: List[TokenSet]) -> None:
        if budget[0] <= 0:
            truncated[0] = True  # a branch was cut: `best` is unproven
            return
        budget[0] -= 1
        if best[0] is not None and len(chosen) >= len(best[0]):
            return
        if not remaining:
            best[0] = frozenset(chosen)
            return
        # Branch on the smallest uncovered set (most constrained first).
        target = min(remaining, key=lambda s: (len(s), sorted(map(sort_key, s))))
        for token in sorted(target, key=sort_key):
            chosen.add(token)
            search(chosen, [s for s in remaining if token not in s])
            chosen.discard(token)

    search(set(), sets)
    result = None if truncated[0] else best[0]
    _exact_cache.put(memo_key, result if result is not None else _NO_SOLUTION)
    return result
