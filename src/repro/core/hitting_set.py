"""Minimum Hitting Set machinery shared by every NetDiagnoser variant.

§2.3 reduces fault localisation to Minimum Hitting Set: find the smallest
link set H intersecting every failure set while avoiding every
working-path link.  The optimisation problem is NP-hard (dual of Min Set
Cover); :func:`greedy_hitting_set` implements the paper's greedy heuristic
(Algorithm 1) generalised with the extensions later sections bolt on:

* **reroute sets** (§3.2) scored with weight ``b`` against the failure
  sets' weight ``a`` (paper uses a = b = 1);
* **preseeded links** (§3.3): IGP link-down messages put links into H
  before the greedy loop starts;
* **exclusions** (§2.4 working paths, §3.3 withdrawal exoneration): links
  that may never enter the candidate set;
* **link clusters** (§3.4): an unidentified link scores — and explains —
  the failure sets of every cluster member.

:func:`exact_hitting_set` is a branch-and-bound exact solver used by the
optimality-gap ablation; it is exponential and guarded by an expansion
budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.linkspace import LinkToken, sort_key
from repro.errors import DiagnosisError

__all__ = ["GreedyResult", "greedy_hitting_set", "exact_hitting_set"]

TokenSet = FrozenSet[LinkToken]


@dataclass
class GreedyResult:
    """Outcome of one greedy hitting-set run.

    ``unexplained_failures`` / ``unexplained_reroutes`` are the input sets
    the hypothesis could not intersect (their candidates were all excluded
    or exhausted) — non-empty values mean the observations are mutually
    inconsistent with the exclusion constraints, which the diagnosis report
    surfaces rather than hides.
    """

    hypothesis: TokenSet
    unexplained_failures: Tuple[TokenSet, ...]
    unexplained_reroutes: Tuple[TokenSet, ...]
    iterations: int
    preseeded: TokenSet = frozenset()

    @property
    def fully_explained(self) -> bool:
        """True when every failure and reroute set is hit."""
        return not (self.unexplained_failures or self.unexplained_reroutes)


def greedy_hitting_set(
    failure_sets: Sequence[Iterable[LinkToken]],
    reroute_sets: Sequence[Iterable[LinkToken]] = (),
    excluded: Iterable[LinkToken] = (),
    preseed: Iterable[LinkToken] = (),
    failure_weight: int = 1,
    reroute_weight: int = 1,
    cluster_of: Optional[Callable[[LinkToken], TokenSet]] = None,
) -> GreedyResult:
    """Run the paper's greedy Minimum Hitting Set heuristic.

    Parameters mirror Algorithm 1 plus the NetDiagnoser extensions; see the
    module docstring.  ``cluster_of`` maps a candidate link to the set of
    links clustered with it (§3.4); links absent from any cluster should
    map to an empty set.
    """
    failures: List[TokenSet] = [frozenset(s) for s in failure_sets]
    reroutes: List[TokenSet] = [frozenset(s) for s in reroute_sets]
    if any(not s for s in failures) or any(not s for s in reroutes):
        raise DiagnosisError("empty failure/reroute set: a failed path with no links")
    excluded_set: TokenSet = frozenset(excluded)
    preseed_set: TokenSet = frozenset(preseed)

    # Inverted index: token -> ids of the sets containing it.  Reroute set
    # ids are offset past the failure ids so one id space covers both.
    index: Dict[LinkToken, Set[int]] = {}
    for set_id, s in enumerate(failures + reroutes):
        for token in s:
            index.setdefault(token, set()).add(set_id)
    n_failures = len(failures)

    def ids_hit_by(token: LinkToken) -> Set[int]:
        """Set ids hit by the token or anything clustered with it."""
        hit = set(index.get(token, ()))
        if cluster_of is not None:
            cluster = cluster_of(token)
            if cluster:
                cached = cluster_hits.get(cluster)
                if cached is None:
                    cached = set()
                    for member in cluster:
                        cached |= index.get(member, set())
                    cluster_hits[cluster] = cached
                hit |= cached
        return hit

    cluster_hits: Dict[TokenSet, Set[int]] = {}
    hypothesis: Set[LinkToken] = set(preseed_set)
    unexplained: Set[int] = set(range(len(failures) + len(reroutes)))
    for token in preseed_set:
        unexplained -= ids_hit_by(token)

    candidates: Set[LinkToken] = set(index)
    candidates -= excluded_set
    candidates -= hypothesis

    iterations = 0
    while unexplained and candidates:
        iterations += 1
        best_score = 0
        scores: Dict[LinkToken, int] = {}
        hit_sets: Dict[LinkToken, FrozenSet[int]] = {}
        for token in candidates:
            hit = ids_hit_by(token) & unexplained
            if not hit:
                continue
            score = 0
            for set_id in hit:
                score += failure_weight if set_id < n_failures else reroute_weight
            scores[token] = score
            # Equivalence class on *scored* evidence only: a set whose
            # weight is zero contributes nothing to the ranking, so it
            # must not make two otherwise-identical winners look
            # distinguishable either.
            hit_sets[token] = frozenset(
                set_id
                for set_id in hit
                if (failure_weight if set_id < n_failures else reroute_weight)
            )
            if score > best_score:
                best_score = score
        if best_score <= 0:
            break  # remaining sets have no admissible candidate
        # Algorithm 1 lines 13-17: add *every* maximum-score link.  Tied
        # winners with the *same* hit-set are indistinguishable on the
        # evidence and are all blamed (that is the point of the all-ties
        # rule: the true link must not be dropped in favour of a peer of
        # its equivalence class).  But a tied winner whose sets were all
        # explained by *distinguishably different* earlier winners of the
        # same iteration carries no evidence of its own — re-scored, it
        # would no longer win — so adding it would inflate |H| beyond
        # Algorithm 1's intent.
        winners = sorted(
            (t for t, score in scores.items() if score == best_score),
            key=sort_key,
        )
        added_classes: Set[FrozenSet[int]] = set()
        for token in winners:
            explains_new = bool(ids_hit_by(token) & unexplained)
            if not explains_new and hit_sets[token] not in added_classes:
                continue
            hypothesis.add(token)
            candidates.discard(token)
            unexplained -= ids_hit_by(token)
            added_classes.add(hit_sets[token])

    all_sets = failures + reroutes
    leftover_f = [
        all_sets[set_id] for set_id in sorted(unexplained) if set_id < n_failures
    ]
    leftover_r = [
        all_sets[set_id] for set_id in sorted(unexplained) if set_id >= n_failures
    ]
    return GreedyResult(
        hypothesis=frozenset(hypothesis),
        unexplained_failures=tuple(leftover_f),
        unexplained_reroutes=tuple(leftover_r),
        iterations=iterations,
        preseeded=preseed_set,
    )


def exact_hitting_set(
    failure_sets: Sequence[Iterable[LinkToken]],
    excluded: Iterable[LinkToken] = (),
    max_expansions: int = 200_000,
) -> Optional[TokenSet]:
    """Exact minimum hitting set via branch and bound.

    Returns ``None`` when no admissible hitting set exists (every candidate
    of some set is excluded) or when the expansion budget truncated the
    search — callers treat both as "fall back to greedy".  A truncated
    search returns ``None`` even if *some* hitting set had already been
    found: an unexplored branch could still hold a smaller one, so
    returning the interim ``best`` would pass off a possibly non-minimal
    set as the optimum (the optimality-gap ablation would then understate
    greedy's gap).  Deterministic: branches explore candidates in
    :func:`~repro.core.linkspace.sort_key` order.
    """
    excluded_set = frozenset(excluded)
    sets: List[TokenSet] = []
    for s in failure_sets:
        pruned = frozenset(s) - excluded_set
        if not pruned:
            return None
        sets.append(pruned)
    if not sets:
        return frozenset()

    best: List[Optional[FrozenSet[LinkToken]]] = [None]
    budget = [max_expansions]
    truncated = [False]

    def search(chosen: Set[LinkToken], remaining: List[TokenSet]) -> None:
        if budget[0] <= 0:
            truncated[0] = True  # a branch was cut: `best` is unproven
            return
        budget[0] -= 1
        if best[0] is not None and len(chosen) >= len(best[0]):
            return
        if not remaining:
            best[0] = frozenset(chosen)
            return
        # Branch on the smallest uncovered set (most constrained first).
        target = min(remaining, key=lambda s: (len(s), sorted(map(sort_key, s))))
        for token in sorted(target, key=sort_key):
            chosen.add(token)
            search(chosen, [s for s in remaining if token not in s])
            chosen.discard(token)

    search(set(), sets)
    if truncated[0]:
        return None
    return best[0]
