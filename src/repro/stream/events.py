"""Typed stream events, the logical clock, and the append-only event log.

The paper frames NetDiagnoser as something an ISP runs *continuously*:
probe results, BGP withdrawals and IGP link-down messages arrive at AS-X
as a stream (§3.3), not as pre-assembled experiment rounds.  This module
is the stream's vocabulary — one frozen dataclass per observable thing —
plus the two pieces of plumbing an online engine needs around it:

* a :class:`LogicalClock`: deterministic logical time.  Ticks are
  measurement rounds, not wall seconds, so the same event log always
  means the same history regardless of host speed (the determinism
  guarantee every ``repro.stream`` test leans on);
* an append-only event-log format in the :mod:`repro.serialize` style:
  plain JSON lines, stable across Python versions, safe to archive, and
  crash-tolerant (a truncated trailing line is dropped on load, like
  :class:`~repro.experiments.journal.RunJournal`'s trailing record).

Every event carries ``(tick, seq)``: the logical round it was observed
in and its global arrival sequence number.  ``seq`` totally orders the
log; ``tick`` is what windowing and episode detection reason about.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Sequence, Union

from repro.core.control_plane import (
    IgpLinkDownObservation,
    WithdrawalObservation,
)
from repro.core.linkspace import UhNode
from repro.core.pathset import ProbePath
from repro.errors import StreamError

__all__ = [
    "EVENT_LOG_FORMAT",
    "LogicalClock",
    "StreamEvent",
    "ProbeEvent",
    "ReachabilityEvent",
    "WithdrawalEvent",
    "IgpLinkDownEvent",
    "SensorHeartbeatEvent",
    "SensorDropoutEvent",
    "stream_event_to_dict",
    "stream_event_from_dict",
    "save_event_log",
    "load_event_log",
    "EventLogWriter",
]

logger = logging.getLogger(__name__)

EVENT_LOG_FORMAT = "repro-event-log-v1"


class LogicalClock:
    """Monotonic logical time: one tick per measurement round.

    The clock never reads the wall — replaying a recorded log on a slow
    laptop and on a build server produces identical histories.  It only
    enforces monotonicity: time that runs backwards means a corrupted or
    hand-edited log, which is worth a typed error rather than silently
    reordered windows.
    """

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise StreamError(f"logical clock cannot start at {start}")
        self._now = start

    @property
    def now(self) -> int:
        return self._now

    def tick(self) -> int:
        """Advance one round and return the new time."""
        self._now += 1
        return self._now

    def advance_to(self, tick: int) -> int:
        """Jump forward to ``tick`` (idempotent; backwards raises)."""
        if tick < self._now:
            raise StreamError(
                f"logical clock cannot run backwards ({self._now} -> {tick})"
            )
        self._now = tick
        return self._now


@dataclass(frozen=True)
class StreamEvent:
    """Base of every stream event: when (tick) and in what order (seq)."""

    tick: int
    seq: int


@dataclass(frozen=True)
class ProbeEvent(StreamEvent):
    """One traceroute result arriving at the troubleshooter.

    ``path.epoch`` says which slot it refreshes: ``pre`` probes are
    baseline refreshes (the sensor's current view of a working mesh),
    ``post`` probes are live measurements the engine diagnoses against.
    """

    path: ProbePath


@dataclass(frozen=True)
class ReachabilityEvent(StreamEvent):
    """A lightweight reachability bit for one pair, without a path.

    Real deployments interleave cheap ping-style liveness checks between
    full traceroutes; these update episode detection (a pair can alarm
    or clear) but carry no hops for the window to diagnose with.
    """

    src: str
    dst: str
    reached: bool


@dataclass(frozen=True)
class WithdrawalEvent(StreamEvent):
    """One BGP withdrawal from AS-X's route monitor (§3.3)."""

    observation: WithdrawalObservation


@dataclass(frozen=True)
class IgpLinkDownEvent(StreamEvent):
    """One IGP link-down message from AS-X's IS-IS listener (§3.3)."""

    observation: IgpLinkDownObservation


@dataclass(frozen=True)
class SensorHeartbeatEvent(StreamEvent):
    """A sensor announcing it is alive (clears a dropout)."""

    address: str


@dataclass(frozen=True)
class SensorDropoutEvent(StreamEvent):
    """A sensor going dark: its stored observations become suspect and
    its pairs are excluded from snapshots until a heartbeat returns."""

    address: str


# ------------------------------------------------------------- serialization


def _hop_to_json(hop: Any) -> Any:
    if isinstance(hop, str):
        return hop
    return {
        "uh": True,
        "src": hop.src,
        "dst": hop.dst,
        "epoch": hop.epoch,
        "index": hop.index,
    }


def _hop_from_json(data: Any) -> Any:
    if isinstance(data, str):
        return data
    return UhNode(
        src=data["src"], dst=data["dst"], epoch=data["epoch"], index=data["index"]
    )


def stream_event_to_dict(event: StreamEvent) -> Dict[str, Any]:
    """Serialise one stream event to a plain-JSON dict."""
    base = {"tick": event.tick, "seq": event.seq}
    if isinstance(event, ProbeEvent):
        path = event.path
        return {
            "type": "probe",
            **base,
            "src": path.src,
            "dst": path.dst,
            "hops": [_hop_to_json(hop) for hop in path.hops],
            "reached": path.reached,
            "epoch": path.epoch,
        }
    if isinstance(event, ReachabilityEvent):
        return {
            "type": "reach",
            **base,
            "src": event.src,
            "dst": event.dst,
            "reached": event.reached,
        }
    if isinstance(event, WithdrawalEvent):
        o = event.observation
        return {
            "type": "bgp-withdrawal",
            **base,
            "prefix": o.prefix,
            "at": o.at_address,
            "from": o.from_address,
            "from_asn": o.from_asn,
            "feed_seq": o.seq,
        }
    if isinstance(event, IgpLinkDownEvent):
        o = event.observation
        return {
            "type": "igp-link-down",
            **base,
            "a": o.address_a,
            "b": o.address_b,
            "feed_seq": o.seq,
        }
    if isinstance(event, SensorHeartbeatEvent):
        return {"type": "heartbeat", **base, "address": event.address}
    if isinstance(event, SensorDropoutEvent):
        return {"type": "dropout", **base, "address": event.address}
    raise StreamError(f"cannot serialise event type {type(event).__name__}")


def stream_event_from_dict(data: Dict[str, Any]) -> StreamEvent:
    """Reconstruct one stream event from its dict form."""
    kind = data.get("type")
    tick, seq = data["tick"], data["seq"]
    if kind == "probe":
        return ProbeEvent(
            tick=tick,
            seq=seq,
            path=ProbePath(
                src=data["src"],
                dst=data["dst"],
                hops=tuple(_hop_from_json(hop) for hop in data["hops"]),
                reached=data["reached"],
                epoch=data["epoch"],
            ),
        )
    if kind == "reach":
        return ReachabilityEvent(
            tick=tick,
            seq=seq,
            src=data["src"],
            dst=data["dst"],
            reached=data["reached"],
        )
    if kind == "bgp-withdrawal":
        return WithdrawalEvent(
            tick=tick,
            seq=seq,
            observation=WithdrawalObservation(
                prefix=data["prefix"],
                at_address=data["at"],
                from_address=data["from"],
                from_asn=data["from_asn"],
                seq=data["feed_seq"],
            ),
        )
    if kind == "igp-link-down":
        return IgpLinkDownEvent(
            tick=tick,
            seq=seq,
            observation=IgpLinkDownObservation(
                address_a=data["a"], address_b=data["b"], seq=data["feed_seq"]
            ),
        )
    if kind == "heartbeat":
        return SensorHeartbeatEvent(tick=tick, seq=seq, address=data["address"])
    if kind == "dropout":
        return SensorDropoutEvent(tick=tick, seq=seq, address=data["address"])
    raise StreamError(f"unknown stream event type {kind!r}")


# ----------------------------------------------------------------- event log


class EventLogWriter:
    """Append-only event-log writer (header + one JSON line per event).

    Usable as a context manager; ``append`` flushes every line so a log
    being written mid-run is immediately replayable up to its last
    complete event — the crash-recovery property the resume tests lean
    on.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "w")
        self._handle.write(json.dumps({"format": EVENT_LOG_FORMAT}) + "\n")
        self._handle.flush()

    def append(self, event: StreamEvent) -> None:
        self._handle.write(json.dumps(stream_event_to_dict(event)) + "\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def save_event_log(
    events: Sequence[StreamEvent], path: Union[str, Path]
) -> None:
    """Write a complete event log in one go."""
    with EventLogWriter(path) as writer:
        for event in events:
            writer.append(event)


def _iter_event_lines(path: Path) -> Iterator[Dict[str, Any]]:
    with open(path, "r") as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError:
            raise StreamError(f"{path} is not a repro event log (bad header)")
        if not isinstance(header, dict) or header.get("format") != EVENT_LOG_FORMAT:
            raise StreamError(
                f"{path} is not a repro event log "
                f"(header {header_line.strip()!r})"
            )
        for line_no, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                # Crash mid-append: drop the torn tail, keep the prefix.
                logger.warning(
                    "event log %s has a truncated trailing line (%d); "
                    "dropping it",
                    path, line_no,
                )
                return


def load_event_log(path: Union[str, Path]) -> List[StreamEvent]:
    """Load an event log written by :class:`EventLogWriter`.

    Events are returned in ``seq`` order (the file order, re-sorted
    defensively); a truncated trailing line is dropped with a warning.
    """
    events = [stream_event_from_dict(data) for data in _iter_event_lines(Path(path))]
    events.sort(key=lambda e: e.seq)
    return events
