"""Self-healing supervision over the sharded streaming engine.

A service meant to run for months will lose shards: processes crash,
GC pauses stall them, a hot shard falls behind.  This module is the
recovery layer that turns those failures from silent wrong answers into
*accounted degradation*:

* :class:`ShardSupervisor` tracks per-shard liveness on the logical
  clock.  Failures are injected deterministically by the chaos modes of
  :class:`~repro.faults.FaultPlan` (``shard-crash``, ``shard-stall``,
  ``slow-shard``) — each decision hashes ``(seed, mode, shard, tick)``,
  so a chaos run is bit-identical across replays and identical whether
  shards are drained serially or in parallel.
* While a shard is **dark**, its events are buffered (bounded; overflow
  goes to the dead-letter queue, never the floor), and the merger is fed
  the shard's last-known alarmed set — the *stale-alarm hold* that stops
  an episode flapping closed just because its shard stopped reporting.
  Coverage loss is counted (``pairs_uncovered``, ``episodes_delayed``),
  never hidden.
* On restart the shard is wiped (that is what a crash *is*), restored
  from its latest :class:`~repro.stream.checkpoint.CheckpointStore`
  snapshot, and replayed the tail of events folded since that snapshot
  plus the darkness buffer — re-screened through the same ingestor, so
  counters land on exactly the totals an undisturbed run reports.
* :class:`CircuitBreaker` guards each diagnosis variant: repeated hard
  failures (worker timeout/poison, queue overflow, pool loss) open the
  breaker, opened work is short-circuited to an accounted empty verdict,
  and after a cooldown a single half-open probe decides whether to
  re-close.  All timing is logical ticks — deterministic.
* :class:`DeadLetterQueue` journals poison episodes and overflowed
  events as replayable JSON lines (``repro-dlq-v1``) with provenance:
  what, why, which shard, which tick.  ``python -m repro stream --dlq``
  inspects it.

**Determinism contract.**  Supervised replay with a seeded chaos plan is
a pure function of (event log, config, seed): every crash/stall/poison
decision, every recovery, every dead-letter entry reproduces exactly.
When a crash's darkness fits inside the episode debounce window, the
recovered run's final verdicts are *byte-identical* to an undisturbed
run; otherwise the difference is exactly the accounted degraded items.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import StreamError, SupervisionError
from repro.faults import FaultPlan
from repro.stream.checkpoint import CheckpointStore
from repro.stream.engine import EpisodeDiagnosis, _empty_diagnosis
from repro.stream.episodes import CLOSE, EpisodeTransition
from repro.stream.events import StreamEvent, stream_event_to_dict
from repro.stream.router import ShardedStreamEngine, StreamShard, _MergeEngine

__all__ = [
    "DLQ_FORMAT",
    "SupervisionConfig",
    "CircuitBreaker",
    "DeadLetterQueue",
    "load_dead_letters",
    "ShardSupervisor",
    "SupervisedStreamEngine",
]

logger = logging.getLogger(__name__)

Pair = Tuple[str, str]

DLQ_FORMAT = "repro-dlq-v1"

# Shard liveness states.
RUNNING = "running"
CRASHED = "crashed"
STALLED = "stalled"

# Breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

# Diagnosis error names the breaker treats as hard infrastructure
# failures (as opposed to a diagnoser legitimately declining a window).
HARD_FAILURES = frozenset(
    {"JobTimeoutError", "EpisodeOverflowError", "BrokenProcessPool"}
)


@dataclass(frozen=True)
class SupervisionConfig:
    """Tunables of the supervision layer, all in logical ticks.

    ``checkpoint_every``: healthy shards snapshot every N ticks;
    ``restart_after``: ticks a crashed shard stays dark before restart;
    ``buffer_limit``: max events buffered per dark shard (beyond goes to
    the dead-letter queue); ``breaker_threshold``: consecutive hard
    failures that open a variant's breaker; ``breaker_cooldown``: ticks
    an open breaker waits before its half-open probe;
    ``episode_strikes``: hard-failed diagnoses after which an episode's
    further transitions are dead-lettered instead of re-queued.
    """

    checkpoint_every: int = 2
    restart_after: int = 1
    buffer_limit: int = 4096
    breaker_threshold: int = 3
    breaker_cooldown: int = 4
    episode_strikes: int = 2

    def __post_init__(self) -> None:
        for name in (
            "checkpoint_every",
            "restart_after",
            "breaker_threshold",
            "breaker_cooldown",
            "episode_strikes",
        ):
            if getattr(self, name) < 1:
                raise StreamError(
                    f"supervision {name} must be >= 1, got {getattr(self, name)}"
                )
        if self.buffer_limit < 0:
            raise StreamError(
                f"supervision buffer_limit must be >= 0, got {self.buffer_limit}"
            )


class CircuitBreaker:
    """A circuit breaker on the logical clock.

    CLOSED admits everything and counts consecutive hard failures;
    ``threshold`` of them in a row OPEN the breaker.  OPEN short-circuits
    every request until ``cooldown`` ticks have passed, then admits one
    HALF_OPEN probe: success re-closes, failure re-opens and restarts
    the cooldown.  No wall clock anywhere, so a replayed chaos schedule
    trips and recovers the breaker at exactly the same ticks every run.
    """

    def __init__(self, threshold: int = 3, cooldown: int = 4) -> None:
        if threshold < 1 or cooldown < 1:
            raise StreamError(
                "breaker threshold and cooldown must be >= 1 "
                f"(threshold={threshold}, cooldown={cooldown})"
            )
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[int] = None
        self._probe_pending = False
        self.times_opened = 0
        self.times_reclosed = 0
        self.short_circuits = 0
        self.probes = 0

    def allow(self, tick: int) -> bool:
        """May a request proceed at ``tick``?  False means short-circuit."""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if (
                self._opened_at is not None
                and tick - self._opened_at >= self.cooldown
            ):
                self.state = BREAKER_HALF_OPEN
                self._probe_pending = True
                self.probes += 1
                return True
            self.short_circuits += 1
            return False
        # HALF_OPEN: one probe in flight at a time.
        if self._probe_pending:
            self.short_circuits += 1
            return False
        self._probe_pending = True
        self.probes += 1
        return True

    def record_success(self) -> None:
        """The admitted request succeeded."""
        self._consecutive_failures = 0
        self._probe_pending = False
        if self.state != BREAKER_CLOSED:
            self.times_reclosed += 1
        self.state = BREAKER_CLOSED

    def record_failure(self, tick: int) -> None:
        """The admitted request hard-failed at ``tick``."""
        self._consecutive_failures += 1
        self._probe_pending = False
        if self.state == BREAKER_HALF_OPEN or (
            self.state == BREAKER_CLOSED
            and self._consecutive_failures >= self.threshold
        ):
            self.state = BREAKER_OPEN
            self._opened_at = tick
            self._consecutive_failures = 0
            self.times_opened += 1

    def counters(self) -> Dict[str, int]:
        return {
            "times_opened": self.times_opened,
            "times_reclosed": self.times_reclosed,
            "short_circuits": self.short_circuits,
            "probes": self.probes,
        }


class DeadLetterQueue:
    """Journalled parking lot for work the service refuses to retry.

    Two kinds of entries: **events** a dark shard's buffer could not
    hold, and **episode transitions** whose diagnoses kept hard-failing
    past the strike limit.  Each entry carries replayable provenance —
    the serialised payload, the reason, the owning shard, the tick — as
    one JSON line in the :class:`~repro.stream.events.EventLogWriter`
    style (flushed per line, torn tail dropped on load).  ``path=None``
    keeps entries in memory only.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.entries: List[Dict[str, Any]] = []
        self._handle = None
        if self.path is not None:
            self._handle = open(self.path, "w")
            self._handle.write(json.dumps({"format": DLQ_FORMAT}) + "\n")
            self._handle.flush()

    def _put(self, entry: Dict[str, Any]) -> None:
        self.entries.append(entry)
        if self._handle is not None:
            self._handle.write(json.dumps(entry) + "\n")
            self._handle.flush()

    def put_event(
        self,
        event: StreamEvent,
        reason: str,
        shard: Optional[int] = None,
    ) -> None:
        """Dead-letter one stream event (replayable via its dict form)."""
        self._put(
            {
                "kind": "event",
                "reason": reason,
                "shard": shard,
                "tick": event.tick,
                "event": stream_event_to_dict(event),
            }
        )

    def put_episode(
        self,
        transition: EpisodeTransition,
        reason: str,
        shard: Optional[int] = None,
    ) -> None:
        """Dead-letter one episode transition with its alarmed pairs."""
        self._put(
            {
                "kind": "episode",
                "reason": reason,
                "shard": shard,
                "tick": transition.tick,
                "episode_id": transition.episode_id,
                "transition": transition.kind,
                "pairs": [list(pair) for pair in transition.pairs],
            }
        )

    def __len__(self) -> int:
        return len(self.entries)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def load_dead_letters(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load a dead-letter journal; torn trailing line dropped, like the
    event log."""
    path = Path(path)
    entries: List[Dict[str, Any]] = []
    with open(path, "r") as handle:
        header_line = handle.readline()
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError:
            raise SupervisionError(
                f"{path} is not a dead-letter journal (bad header)"
            )
        if not isinstance(header, dict) or header.get("format") != DLQ_FORMAT:
            raise SupervisionError(
                f"{path} is not a {DLQ_FORMAT} journal "
                f"(header {header_line.strip()!r})"
            )
        for line_no, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                logger.warning(
                    "dead-letter journal %s has a truncated trailing line "
                    "(%d); dropping it",
                    path, line_no,
                )
                break
    return entries


class ShardSupervisor:
    """Liveness tracking, darkness buffering and checkpointed restart.

    The supervisor is driven from the engine's tick loop: ``begin_tick``
    (before the merge) restarts shards whose darkness has run its
    course, ``end_tick`` (after the merge) rolls the chaos dice for the
    next tick and checkpoints healthy shards.  Both run on the logical
    clock, so every decision replays.

    Crash semantics: the failure is *detected* at the end of the tick it
    fires on; the shard then serves its last-known (stale) window and
    alarm view to the merger — accounted via ``pairs_uncovered`` — while
    new events for it are buffered.  At restart the shard state is wiped
    (``StreamShard.reset``), the latest checkpoint restored, and the
    post-checkpoint tail plus the darkness buffer replayed through the
    normal screening path, which provably reconstructs the undisturbed
    state (the chaos tests assert byte-identical final verdicts).
    """

    def __init__(
        self,
        shards: Sequence[StreamShard],
        config: Optional[SupervisionConfig] = None,
        plan: Optional[FaultPlan] = None,
        checkpoints: Optional[CheckpointStore] = None,
        dead_letters: Optional[DeadLetterQueue] = None,
    ) -> None:
        self.shards = list(shards)
        self.config = config or SupervisionConfig()
        self.plan = plan
        self.checkpoints = checkpoints or CheckpointStore()
        self.dead_letters = dead_letters
        n = len(self.shards)
        self._status = [RUNNING] * n
        self._darkened_at: List[Optional[int]] = [None] * n
        self._stall_ticks = [0] * n
        # Events folded into each shard since its last checkpoint, as
        # ("pair", raw_event) / ("bcast", screened_event) entries — the
        # replay tail a restart needs on top of the checkpoint.
        self._tails: List[List[Tuple[str, StreamEvent]]] = [[] for _ in range(n)]
        # Events offered to a shard while it was dark.
        self._buffers: List[List[Tuple[str, StreamEvent]]] = [[] for _ in range(n)]
        # Last-known alarmed set per shard: what the merger sees while
        # the shard is dark or late.
        self._hold: List[Tuple[Pair, ...]] = [() for _ in range(n)]
        # accounting
        self.shard_crashes = 0
        self.shard_stalls = 0
        self.slow_ticks = 0
        self.recoveries = 0
        self.ticks_dark = 0
        self.events_buffered = 0
        self.events_dead_lettered = 0
        self.pairs_uncovered = 0
        self.episodes_delayed = 0
        self.ticks_to_recover: List[int] = []
        self.incidents: List[Dict[str, Any]] = []

    # ------------------------------------------------------------- liveness

    def is_dark(self, shard_index: int) -> bool:
        return self._status[shard_index] != RUNNING

    def status(self, shard_index: int) -> str:
        return self._status[shard_index]

    # --------------------------------------------------------------- intake

    def record_tail(
        self, shard_index: int, kind: str, event: StreamEvent
    ) -> None:
        """Note one event folded into a live shard (replay tail)."""
        self._tails[shard_index].append((kind, event))

    def buffer_event(
        self, shard_index: int, kind: str, event: StreamEvent
    ) -> None:
        """Hold one event for a dark shard, or dead-letter it when the
        buffer is full — bounded memory, accounted loss."""
        buffer = self._buffers[shard_index]
        if len(buffer) >= self.config.buffer_limit:
            self.events_dead_lettered += 1
            if self.dead_letters is not None:
                self.dead_letters.put_event(
                    event, reason="dark-shard-buffer-overflow", shard=shard_index
                )
            return
        buffer.append((kind, event))
        self.events_buffered += 1

    # ---------------------------------------------------------------- merge

    def alarm_view(self, shard_index: int, tick: int) -> Tuple[Pair, ...]:
        """The alarmed set the merger should use for this shard now.

        Dark shard: the stale hold (so an open episode does not flap
        closed during an outage).  Slow shard (chaos mode): last tick's
        view, one tick late.  Healthy shard: the live set, which also
        refreshes the hold.
        """
        if self.is_dark(shard_index):
            self.ticks_dark += 1
            return self._hold[shard_index]
        if (
            self.plan is not None
            and self.plan.shard_slow(shard_index, tick)
        ):
            self.slow_ticks += 1
            return self._hold[shard_index]
        live = self.shards[shard_index].alarms.alarmed_pairs()
        self._hold[shard_index] = live
        return live

    # ---------------------------------------------------------------- ticks

    def begin_tick(self, tick: int) -> int:
        """Restart every shard whose darkness is due to end at ``tick``.

        Returns the number of newly admitted pair events from darkness
        buffers — the engine adds them to its admission total (they were
        offered while dark and only now folded)."""
        admitted = 0
        for index, status in enumerate(self._status):
            if status == RUNNING:
                continue
            darkened_at = self._darkened_at[index]
            assert darkened_at is not None
            dark_for = tick - darkened_at
            if status == CRASHED and dark_for < self.config.restart_after:
                continue
            if status == STALLED and dark_for < self._stall_ticks[index]:
                continue
            admitted += self._recover(index, tick)
        return admitted

    def force_recover(self, tick: int) -> int:
        """Recover every dark shard now (end-of-stream flush)."""
        admitted = 0
        for index, status in enumerate(self._status):
            if status != RUNNING:
                admitted += self._recover(index, tick)
        return admitted

    def _recover(self, shard_index: int, tick: int) -> int:
        shard = self.shards[shard_index]
        status = self._status[shard_index]
        if status == CRASHED:
            # The restarted process has nothing: wipe, restore the last
            # checkpoint, replay the post-checkpoint tail through the
            # normal screening path.
            shard.reset()
            checkpoint = self.checkpoints.latest(shard_index)
            if checkpoint is not None:
                shard.restore_state(checkpoint.state)
            for kind, event in self._tails[shard_index]:
                self._refold(shard, kind, event)
        # Both crash and stall recovery then fold the darkness buffer.
        alarmed_before = set(shard.alarms.alarmed_pairs())
        admitted = 0
        for kind, event in self._buffers[shard_index]:
            if self._refold(shard, kind, event) and kind == "pair":
                admitted += 1
        alarmed_after = set(shard.alarms.alarmed_pairs())
        self.episodes_delayed += len(alarmed_after - alarmed_before)
        # Buffered events are now part of the shard's post-checkpoint
        # history: a second crash before the next checkpoint must replay
        # them again.
        self._tails[shard_index].extend(self._buffers[shard_index])
        self._buffers[shard_index] = []
        darkened_at = self._darkened_at[shard_index]
        if darkened_at is not None:
            self.ticks_to_recover.append(tick - darkened_at)
        self._status[shard_index] = RUNNING
        self._darkened_at[shard_index] = None
        self._stall_ticks[shard_index] = 0
        self._hold[shard_index] = shard.alarms.alarmed_pairs()
        self.recoveries += 1
        logger.info(
            "shard %d recovered at tick %d (%s, %d buffered events replayed)",
            shard_index, tick, status, admitted,
        )
        return admitted

    @staticmethod
    def _refold(shard: StreamShard, kind: str, event: StreamEvent) -> bool:
        if kind == "pair":
            return shard.offer(event)
        shard.observe_broadcast(event)
        return True

    def end_tick(self, tick: int) -> None:
        """Roll the chaos dice for running shards, then checkpoint the
        healthy ones.  Crash takes precedence over stall when both fire
        on the same tick (losing state dominates pausing)."""
        if self.plan is not None:
            for index, status in enumerate(self._status):
                if status != RUNNING:
                    continue
                shard = self.shards[index]
                if self.plan.shard_crashes(index, tick):
                    self._status[index] = CRASHED
                    self._darkened_at[index] = tick
                    self.shard_crashes += 1
                    self.pairs_uncovered += shard.alarms.pairs_tracked()
                    self.incidents.append(
                        {"kind": "shard-crash", "shard": index, "tick": tick}
                    )
                    logger.warning("shard %d crashed at tick %d", index, tick)
                    continue
                stall = self.plan.shard_stall_ticks(index, tick)
                if stall > 0:
                    self._status[index] = STALLED
                    self._darkened_at[index] = tick
                    self._stall_ticks[index] = stall
                    self.shard_stalls += 1
                    self.pairs_uncovered += shard.alarms.pairs_tracked()
                    self.incidents.append(
                        {
                            "kind": "shard-stall",
                            "shard": index,
                            "tick": tick,
                            "ticks": stall,
                        }
                    )
                    logger.warning(
                        "shard %d stalled for %d ticks at tick %d",
                        index, stall, tick,
                    )
        if tick > 0 and tick % self.config.checkpoint_every == 0:
            for index, status in enumerate(self._status):
                if status != RUNNING:
                    continue
                self.checkpoints.save(
                    index, tick, self.shards[index].state()
                )
                # Everything in the tail is inside the checkpoint now.
                self._tails[index] = []

    # ------------------------------------------------------------- counters

    def counters(self) -> Dict[str, int]:
        counts = {
            "shard_crashes": self.shard_crashes,
            "shard_stalls": self.shard_stalls,
            "slow_ticks": self.slow_ticks,
            "recoveries": self.recoveries,
            "ticks_dark": self.ticks_dark,
            "events_buffered": self.events_buffered,
            "events_dead_lettered": self.events_dead_lettered,
            "pairs_uncovered": self.pairs_uncovered,
            "episodes_delayed": self.episodes_delayed,
        }
        counts.update(self.checkpoints.counters())
        return counts


class _SupervisedMergeEngine(_MergeEngine):
    """The merge engine with breakers, poison awareness and stale holds.

    Diagnosis work for a variant whose breaker is not closed — and *all*
    work when worker poison can fire — runs inline rather than in the
    process pool: pooled workers swallow exceptions, and the breaker
    must observe every outcome in deterministic (transition, variant)
    order for chaos replays to be bit-identical.
    """

    def __init__(
        self,
        *args,
        plan: Optional[FaultPlan] = None,
        supervision: Optional[SupervisionConfig] = None,
        dead_letters: Optional[DeadLetterQueue] = None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self._plan = plan
        self._supervision = supervision or SupervisionConfig()
        self._dead_letters = dead_letters
        self.supervisor: Optional[ShardSupervisor] = None
        self.breakers: Dict[str, CircuitBreaker] = {
            label: CircuitBreaker(
                threshold=self._supervision.breaker_threshold,
                cooldown=self._supervision.breaker_cooldown,
            )
            for label in self.diagnosers
        }
        self._drain_tick = 0
        self._episode_failures: Dict[int, int] = {}
        self._dead_episodes: set = set()
        self.diagnoses_short_circuited = 0
        self.diagnoses_poisoned = 0
        self.transitions_dead_lettered = 0

    # ----------------------------------------------------------- merge view

    def _shard_alarms(self, tick: int) -> List[Tuple[Pair, ...]]:
        if self.supervisor is None:
            return super()._shard_alarms(tick)
        return [
            self.supervisor.alarm_view(shard.index, tick)
            for shard in self._shards
        ]

    # ------------------------------------------------------------ dead work

    def _schedule(self, transition: EpisodeTransition) -> None:
        if (
            transition.episode_id in self._dead_episodes
            and transition.kind != CLOSE
        ):
            # Struck-out episode: parking further work beats wedging the
            # queue with diagnoses that will hard-fail again.
            self.transitions_dead_lettered += 1
            if self._dead_letters is not None:
                shard = None
                if self._router is not None and transition.pairs:
                    shard = self._router.shard_for_destination(
                        transition.pairs[0][1]
                    )
                self._dead_letters.put_episode(
                    transition, reason="episode-strikes", shard=shard
                )
            return
        super()._schedule(transition)

    # ------------------------------------------------------------ diagnosis

    def drain(self, now: int):
        self._drain_tick = now
        return super().drain(now)

    def _pool_allowed(self, label: str, transition) -> bool:
        if not super()._pool_allowed(label, transition):
            return False
        if self.breakers[label].state != BREAKER_CLOSED:
            return False
        if self._plan is not None and self._plan.config.worker_poison_rate > 0:
            return False
        return True

    def _diagnose_inline(
        self,
        label,
        diagnoser,
        snapshot,
        control,
        transition=None,
    ) -> EpisodeDiagnosis:
        breaker = self.breakers[label]
        tick = self._drain_tick
        if not breaker.allow(tick):
            self.diagnoses_short_circuited += 1
            return _empty_diagnosis(label, error="CircuitOpen")
        if (
            self._plan is not None
            and transition is not None
            and self._plan.worker_poisoned(
                diagnoser.variant, str(transition.episode_id)
            )
        ):
            # The injected worker loss: the diagnoser "process" dies on
            # this input.  Modelled as the timeout the runner would see.
            self.diagnoses_poisoned += 1
            verdict = _empty_diagnosis(label, error="JobTimeoutError")
        else:
            verdict = super()._diagnose_inline(
                label, diagnoser, snapshot, control, transition=transition
            )
        if verdict.error in HARD_FAILURES:
            breaker.record_failure(tick)
            if transition is not None:
                failures = self._episode_failures.get(
                    transition.episode_id, 0
                ) + 1
                self._episode_failures[transition.episode_id] = failures
                if failures >= self._supervision.episode_strikes:
                    self._dead_episodes.add(transition.episode_id)
        elif verdict.error is None:
            breaker.record_success()
        return verdict

    # ------------------------------------------------------------- counters

    def counters(self) -> Dict[str, int]:
        counts = super().counters()
        counts["diagnoses_short_circuited"] = self.diagnoses_short_circuited
        counts["diagnoses_poisoned"] = self.diagnoses_poisoned
        counts["transitions_dead_lettered"] = self.transitions_dead_lettered
        counts["breaker_opened"] = sum(
            b.times_opened for b in self.breakers.values()
        )
        counts["breaker_reclosed"] = sum(
            b.times_reclosed for b in self.breakers.values()
        )
        counts["breaker_short_circuits"] = sum(
            b.short_circuits for b in self.breakers.values()
        )
        counts["breaker_probes"] = sum(
            b.probes for b in self.breakers.values()
        )
        return counts


class SupervisedStreamEngine(ShardedStreamEngine):
    """The sharded engine wrapped in the self-healing layer.

    Same engine protocol as :class:`ShardedStreamEngine`; the additions
    are a :class:`ShardSupervisor` in the tick loop, per-variant
    :class:`CircuitBreaker` instances around diagnosis, and a
    :class:`DeadLetterQueue` behind both.  Built by
    :func:`~repro.stream.replay.run_stream_replay` when chaos or
    supervision is requested.
    """

    def __init__(
        self,
        *args,
        plan: Optional[FaultPlan] = None,
        supervision: Optional[SupervisionConfig] = None,
        checkpoints: Optional[CheckpointStore] = None,
        dead_letters: Optional[DeadLetterQueue] = None,
        **kwargs,
    ) -> None:
        # _make_merge_engine runs inside super().__init__ and reads these.
        self._plan = plan
        self._supervision = supervision or SupervisionConfig()
        self._checkpoints = checkpoints or CheckpointStore()
        self.dead_letters = dead_letters or DeadLetterQueue()
        super().__init__(*args, **kwargs)
        self.supervisor = ShardSupervisor(
            self.shards,
            config=self._supervision,
            plan=plan,
            checkpoints=self._checkpoints,
            dead_letters=self.dead_letters,
        )
        self._engine.supervisor = self.supervisor

    def _make_merge_engine(self, **kwargs) -> _SupervisedMergeEngine:
        return _SupervisedMergeEngine(
            self.shards,
            self.merger,
            router=self.router,
            plan=self._plan,
            supervision=self._supervision,
            dead_letters=self.dead_letters,
            **kwargs,
        )

    # ----------------------------------------------------- engine protocol

    def offer(self, event: StreamEvent) -> bool:
        """Route one event, diverting a dark shard's share to its buffer.

        Broadcasts are still screened exactly once; live shards fold the
        screened event immediately, dark shards get it buffered (and the
        tail records it for every live shard, for a later crash's
        replay).  A dark shard's pair event is buffered raw — it will be
        screened on replay, which keeps screening counters exact.
        """
        self.events_offered += 1
        shard_index = self.router.route(event)
        if shard_index is None:
            self.events_broadcast += 1
            started = time.perf_counter()
            admitted = self.control_ingestor.ingest(event)
            self._engine.seconds["ingest"] += time.perf_counter() - started
            if admitted is None:
                return False
            for shard in self.shards:
                if self.supervisor.is_dark(shard.index):
                    self.supervisor.buffer_event(shard.index, "bcast", admitted)
                else:
                    shard.observe_broadcast(admitted)
                    self.supervisor.record_tail(shard.index, "bcast", admitted)
            self.events_admitted += 1
            return True
        if self.admission.enabled:
            tenant = self.tenant_of(event) if self.tenant_of else None
            if not self.admission.admit(tenant):
                return False
        if self.supervisor.is_dark(shard_index):
            self.supervisor.buffer_event(shard_index, "pair", event)
            return True
        if self.shards[shard_index].offer(event):
            self.supervisor.record_tail(shard_index, "pair", event)
            self.events_admitted += 1
            return True
        return False

    def advance(self, tick: int):
        self.admission.on_tick(tick)
        self.events_admitted += self.supervisor.begin_tick(tick)
        transitions = self._engine.advance(tick)
        self.supervisor.end_tick(tick)
        return transitions

    def flush(self, now: int):
        # End-of-stream: nothing buffered may stay dark, or its events
        # would silently vanish from the final verdicts.
        self.events_admitted += self.supervisor.force_recover(now)
        return super().flush(now)

    def close(self) -> None:
        super().close()
        self.dead_letters.close()

    # ------------------------------------------------------------- counters

    def counters(self) -> Dict[str, int]:
        counts = super().counters()
        counts.update(self.supervisor.counters())
        counts["dead_lettered"] = (
            self.supervisor.events_dead_lettered
            + self._engine.transitions_dead_lettered
        )
        return counts

    def supervision_stats(self) -> Dict[str, Any]:
        """The supervision block for reports and benchmark artifacts."""
        return {
            "counters": self.supervisor.counters(),
            "ticks_to_recover": list(self.supervisor.ticks_to_recover),
            "incidents": list(self.supervisor.incidents),
            "breakers": {
                label: dict(breaker.counters(), state=breaker.state)
                for label, breaker in self._engine.breakers.items()
            },
            "diagnoses_short_circuited": self._engine.diagnoses_short_circuited,
            "diagnoses_poisoned": self._engine.diagnoses_poisoned,
            "transitions_dead_lettered": self._engine.transitions_dead_lettered,
            "dead_letters": len(self.dead_letters),
        }
