"""Sliding-window reconciliation of a stream into diagnosable snapshots.

The batch pipeline hands the diagnosers a complete
:class:`~repro.core.pathset.MeasurementSnapshot` — a ``T-`` round, a
``T+`` round, same pairs, every baseline reached.  A stream never has
that luxury: probes trickle in per-pair, control-plane messages arrive
between them, and sensors disappear mid-round.  :class:`SlidingWindow`
keeps exactly enough state to reconstruct the batch shape on demand:

* a **baseline slot** per pair — the most recent *reached* ``pre``-epoch
  probe (a working path the troubleshooter can compare against);
* a **current slot** per pair — the most recent ``post``-epoch probe
  (the live measurement being diagnosed);
* the in-window control-plane observations (BGP withdrawals, IGP
  link-downs) in arrival order;
* the set of dark sensors (dropout seen, no heartbeat since): their
  pairs are excluded from snapshots because neither slot can be trusted.

Both probe slots live in :class:`~repro.netsim.cache.LruCache` maps, so
window memory is bounded two ways: by recency (``evict`` drops
observations older than ``width`` ticks) and by capacity (the LRU cap
sheds the coldest pairs first when the mesh outgrows memory).  Snapshot
assembly takes the intersection of live slots — exactly the pairs for
which the window holds a usable before/after story — which satisfies
:class:`~repro.core.pathset.MeasurementSnapshot`'s invariants by
construction.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.control_plane import (
    ControlPlaneView,
    IgpLinkDownObservation,
    WithdrawalObservation,
)
from repro.core.pathset import (
    EPOCH_POST,
    EPOCH_PRE,
    MeasurementSnapshot,
    PathStore,
    ProbePath,
)
from repro.errors import StreamError
from repro.netsim.cache import LruCache
from repro.stream.events import (
    IgpLinkDownEvent,
    ProbeEvent,
    SensorDropoutEvent,
    SensorHeartbeatEvent,
    StreamEvent,
    WithdrawalEvent,
)

__all__ = ["SlidingWindow"]

Pair = Tuple[str, str]


class SlidingWindow:
    """Bounded per-pair observation state for the streaming engine.

    ``width`` is the window in logical ticks: an observation older than
    ``now - width`` is stale and evicted.  ``capacity`` bounds each probe
    slot map (0 = unbounded, like every :class:`LruCache`).
    """

    def __init__(self, width: int, capacity: int = 0) -> None:
        if width <= 0:
            raise StreamError(f"window width must be >= 1 tick, got {width}")
        self.width = width
        # pair -> (tick, ProbePath); baseline keeps reached pre-probes,
        # current keeps post-probes (reached or not).
        self._baseline: LruCache[Pair, Tuple[int, ProbePath]] = LruCache(capacity)
        self._current: LruCache[Pair, Tuple[int, ProbePath]] = LruCache(capacity)
        # (arrival seq, observation) kept in arrival order so rebuilt
        # views list messages exactly as the batch collector would.
        self._withdrawals: List[Tuple[int, int, WithdrawalObservation]] = []
        self._igp_downs: List[Tuple[int, int, IgpLinkDownObservation]] = []
        self._dark_sensors: Set[str] = set()
        self.stale_evictions = 0
        self.probes_ignored = 0

    # ------------------------------------------------------------- updates

    def observe(self, event: StreamEvent) -> None:
        """Fold one (already screened) event into the window."""
        if isinstance(event, ProbeEvent):
            self._observe_probe(event)
        elif isinstance(event, WithdrawalEvent):
            self._withdrawals.append((event.tick, event.seq, event.observation))
        elif isinstance(event, IgpLinkDownEvent):
            self._igp_downs.append((event.tick, event.seq, event.observation))
        elif isinstance(event, SensorDropoutEvent):
            self._dark_sensors.add(event.address)
        elif isinstance(event, SensorHeartbeatEvent):
            self._dark_sensors.discard(event.address)
        # ReachabilityEvents update episode detection, not the window:
        # they carry no hops to diagnose with.

    def _observe_probe(self, event: ProbeEvent) -> None:
        path = event.path
        if path.epoch == EPOCH_PRE:
            if not path.reached:
                # A failed pre-probe is no baseline: the troubleshooter
                # is only invoked on previously-working pairs.
                self.probes_ignored += 1
                return
            self._baseline.put(path.pair, (event.tick, path))
        elif path.epoch == EPOCH_POST:
            self._current.put(path.pair, (event.tick, path))
        else:  # pragma: no cover - ingest screens unknown epochs out
            self.probes_ignored += 1

    # ------------------------------------------------------------ eviction

    def evict(self, now: int) -> int:
        """Drop every observation older than ``now - width``; returns count."""
        horizon = now - self.width
        dropped = 0
        for cache in (self._baseline, self._current):
            for pair, (tick, _path) in cache.items():
                if tick <= horizon:
                    cache.pop(pair)
                    dropped += 1
        for name in ("_withdrawals", "_igp_downs"):
            entries = getattr(self, name)
            kept = [entry for entry in entries if entry[0] > horizon]
            dropped += len(entries) - len(kept)
            setattr(self, name, kept)
        self.stale_evictions += dropped
        return dropped

    # ------------------------------------------------------------ assembly

    def usable_pairs(self) -> Tuple[Pair, ...]:
        """Pairs with both slots live and no dark endpoint, sorted.

        Public because the cross-shard merger unions these across shard
        windows to build the merged snapshot in the same sorted-pair
        order a single window would produce.
        """
        pairs = []
        for pair, _entry in self._current.items():
            if pair not in self._baseline:
                continue
            src, dst = pair
            if src in self._dark_sensors or dst in self._dark_sensors:
                continue
            pairs.append(pair)
        return tuple(sorted(pairs))

    # Backwards-compatible private alias.
    _usable_pairs = usable_pairs

    def baseline_for(self, pair: Pair) -> Optional[Tuple[int, ProbePath]]:
        """The live baseline slot for ``pair`` (counts as a lookup)."""
        return self._baseline.get(pair)

    def current_for(self, pair: Pair) -> Optional[Tuple[int, ProbePath]]:
        """The live current slot for ``pair`` (counts as a lookup)."""
        return self._current.get(pair)

    def feed_entries(
        self,
    ) -> Tuple[
        List[Tuple[int, int, WithdrawalObservation]],
        List[Tuple[int, int, IgpLinkDownObservation]],
    ]:
        """Raw ``(tick, seq, observation)`` feed entries, arrival order.

        The merger deduplicates these by ``(tick, seq)`` across shards
        before sorting — seq is globally monotonic, so the merged order
        equals the single-window order.
        """
        return list(self._withdrawals), list(self._igp_downs)

    def snapshot(
        self, asn_of: Callable[[str], Optional[int]]
    ) -> Optional[MeasurementSnapshot]:
        """The batch-shaped snapshot of the window's current knowledge.

        Covers every pair with both a live baseline and a live current
        probe and no dark endpoint; ``None`` when no pair qualifies.
        The invariants :class:`MeasurementSnapshot` enforces (same pairs
        both rounds, all baselines reached) hold by construction.
        """
        pairs = self._usable_pairs()
        if not pairs:
            return None
        before, after = PathStore(), PathStore()
        for pair in pairs:
            baseline = self._baseline.get(pair)
            current = self._current.get(pair)
            before.add(baseline[1])
            after.add(current[1])
        return MeasurementSnapshot(before=before, after=after, asn_of=asn_of)

    def control_view(self, asx_asn: int) -> ControlPlaneView:
        """The in-window control-plane knowledge, in arrival order."""
        return ControlPlaneView(
            asx_asn=asx_asn,
            igp_link_down=tuple(
                obs for _tick, _seq, obs in sorted(
                    self._igp_downs, key=lambda entry: entry[1]
                )
            ),
            withdrawals=tuple(
                obs for _tick, _seq, obs in sorted(
                    self._withdrawals, key=lambda entry: entry[1]
                )
            ),
        )

    # -------------------------------------------------------- checkpointing

    def state(self) -> Dict[str, object]:
        """A picklable snapshot of the window for shard checkpoints.

        Probe slots are captured in LRU order (``LruCache.items`` is
        LRU-first), so :meth:`restore_state`'s re-inserts rebuild the
        exact recency order — a restored window sheds the same cold
        pairs a never-crashed one would.
        """
        return {
            "baseline": self._baseline.items(),
            "current": self._current.items(),
            "withdrawals": list(self._withdrawals),
            "igp_downs": list(self._igp_downs),
            "dark_sensors": sorted(self._dark_sensors),
            "stale_evictions": self.stale_evictions,
            "probes_ignored": self.probes_ignored,
            "lru_counters": tuple(
                (cache.hits, cache.misses, cache.evictions)
                for cache in (self._baseline, self._current)
            ),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rebuild the window from a :meth:`state` snapshot."""
        for cache, key in (
            (self._baseline, "baseline"),
            (self._current, "current"),
        ):
            cache.clear()
            for pair, entry in state[key]:
                cache.put(pair, entry)
        self._withdrawals = list(state["withdrawals"])
        self._igp_downs = list(state["igp_downs"])
        self._dark_sensors = set(state["dark_sensors"])
        self.stale_evictions = state["stale_evictions"]
        self.probes_ignored = state["probes_ignored"]
        for cache, counters in zip(
            (self._baseline, self._current), state["lru_counters"]
        ):
            cache.hits, cache.misses, cache.evictions = counters

    # ---------------------------------------------------------- inspection

    def failed_pairs(self) -> Tuple[Pair, ...]:
        """Usable pairs whose current probe did not reach."""
        return tuple(
            pair
            for pair in self._usable_pairs()
            if not self._current.get(pair)[1].reached
        )

    def dark_sensors(self) -> Tuple[str, ...]:
        return tuple(sorted(self._dark_sensors))

    def counters(self) -> Dict[str, int]:
        """Window accounting for the stream report."""
        return {
            "baseline_pairs": len(self._baseline),
            "current_pairs": len(self._current),
            "stale_evictions": self.stale_evictions,
            "probes_ignored": self.probes_ignored,
            "lru_evictions": self._baseline.evictions + self._current.evictions,
            "dark_sensors": len(self._dark_sensors),
        }
