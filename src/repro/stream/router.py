"""Sharded, multi-tenant front of the streaming engine.

The ROADMAP's north star is a troubleshooter absorbing traffic from
millions of sensor pairs; one :class:`~repro.stream.engine.StreamEngine`
serialises all of that on a single window.  This module is the standard
scale-out shape for the workload:

* :class:`ShardRouter` — consistent hashing over destination origin AS
  (falling back to the destination /24 prefix when the AS is unknown),
  so every probe and reachability bit for one pair lands on the same
  shard, and re-sharding moves only ``~1/N`` of the key space;
* :class:`StreamShard` — one shard's ingest-side state: screening,
  sliding window, pair-alarm debounce.  All cleanly per-pair, which is
  why sharding them loses nothing;
* :class:`AdmissionController` — deterministic per-tenant token buckets
  refilled on logical ticks.  Overload sheds *accountably*: every
  dropped event lands in a per-tenant counter, never on the floor;
* :class:`ShardedStreamEngine` — the drop-in engine: routes pair events
  to shards, broadcasts control-plane and sensor-liveness events to all
  of them, merges alarms through one global
  :class:`~repro.stream.merge.CrossShardMerger`, and funnels episode
  transitions into a single bounded diagnosis queue whose snapshots are
  assembled by :func:`~repro.stream.merge.merged_snapshot`.

**Determinism contract.**  With admission disabled (no tenants) and
unbounded window capacity, ``shards=K, workers=W`` replay is
bit-identical to serial single-shard replay: pairs partition
losslessly, broadcasts are screened once, the merged snapshot and
control view reproduce the single-window assembly order, and episode
lifecycle + diagnosis queue are global.  Per-shard LRU capacity bounds
(``window_capacity > 0``) are the one documented deviation: each shard
caps its own caches, so *which* cold pairs are shed can differ from the
single-window order.
"""

from __future__ import annotations

import hashlib
import time
from bisect import bisect_right
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.control_plane import ControlPlaneView
from repro.core.diagnoser import NetDiagnoser
from repro.core.pathset import EPOCH_POST, EPOCH_PRE, MeasurementSnapshot
from repro.errors import EpisodeOverflowError, StreamError
from repro.faults import DegradationReport
from repro.stream.engine import EpisodeReport, StreamEngine
from repro.stream.episodes import EpisodeTransition, PairAlarmTracker
from repro.stream.events import (
    ProbeEvent,
    ReachabilityEvent,
    SensorDropoutEvent,
    SensorHeartbeatEvent,
    StreamEvent,
)
from repro.stream.ingest import StreamIngestor
from repro.stream.merge import (
    CrossShardMerger,
    merged_control_view,
    merged_snapshot,
)
from repro.stream.window import SlidingWindow

__all__ = [
    "stable_hash",
    "ShardRouter",
    "TenantConfig",
    "AdmissionController",
    "source_tenant_of",
    "StreamShard",
    "ShardedStreamEngine",
]

Pair = Tuple[str, str]


def stable_hash(key: str) -> int:
    """A process-independent 64-bit hash of ``key``.

    Python's builtin ``hash`` is salted per process (PYTHONHASHSEED),
    which would scatter the same event log across different shards on
    every run — the opposite of a determinism guarantee.  blake2b is
    stable everywhere and cheap at digest_size=8.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRouter:
    """Consistent-hash routing of pair-scoped events to shards.

    The ring holds ``replicas`` virtual nodes per shard; a key maps to
    the first virtual node clockwise from its hash.  Changing the shard
    count therefore remaps only the keys between affected virtual nodes
    (~``1/N`` of the space), not everything — the property that makes
    re-sharding a live deployment survivable.

    Events without a destination key (control-plane messages, sensor
    heartbeats/dropouts) route to ``None``: **broadcast**, every shard
    needs them.
    """

    def __init__(
        self,
        n_shards: int,
        asn_of: Optional[Callable[[str], Optional[int]]] = None,
        replicas: int = 32,
    ) -> None:
        if n_shards < 1:
            raise StreamError(f"need >= 1 shard, got {n_shards}")
        if replicas < 1:
            raise StreamError(f"need >= 1 ring replica, got {replicas}")
        self.n_shards = n_shards
        self.asn_of = asn_of
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(n_shards):
            for replica in range(replicas):
                points.append((stable_hash(f"shard-{shard}/vn-{replica}"), shard))
        points.sort()
        self._ring_points = [point for point, _shard in points]
        self._ring_shards = [shard for _point, shard in points]
        # The key space is small (origin ASes / /24 prefixes) while the
        # event volume is huge; memoise ring lookups per key.
        self._key_cache: Dict[str, int] = {}

    def key_of(self, event: StreamEvent) -> Optional[str]:
        """The routing key for an event; ``None`` means broadcast.

        Keyed by the *destination* origin AS when the mapper knows it
        (all pairs probing into one AS co-locate — exactly the pairs a
        destination-side failure alarms together), else by the
        destination /24 prefix.
        """
        if isinstance(event, ProbeEvent):
            dst = event.path.dst
        elif isinstance(event, ReachabilityEvent):
            dst = event.dst
        else:
            return None
        return self.key_for_destination(dst)

    def key_for_destination(self, dst: str) -> str:
        """The routing key of a destination address (origin AS or /24)."""
        asn = self.asn_of(dst) if self.asn_of is not None else None
        if asn is not None:
            return f"as{asn}"
        return f"pfx{dst.rsplit('.', 1)[0]}"

    def shard_for_destination(self, dst: str) -> int:
        """The shard owning a destination address's pairs."""
        return self.shard_for_key(self.key_for_destination(dst))

    def shard_for_key(self, key: str) -> int:
        """The shard owning ``key`` on the ring (wraps clockwise)."""
        shard = self._key_cache.get(key)
        if shard is None:
            index = bisect_right(self._ring_points, stable_hash(key))
            if index == len(self._ring_points):
                index = 0
            shard = self._ring_shards[index]
            self._key_cache[key] = shard
        return shard

    def route(self, event: StreamEvent) -> Optional[int]:
        """Shard index for a pair-scoped event, ``None`` for broadcast."""
        key = self.key_of(event)
        if key is None:
            return None
        return self.shard_for_key(key)


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's admission contract.

    ``rate`` is events admitted per logical tick (``None`` = unlimited);
    ``burst`` the bucket depth (defaults to ``rate``).
    """

    name: str
    rate: Optional[int] = None
    burst: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rate is not None and self.rate < 1:
            raise StreamError(
                f"tenant {self.name!r} rate must be >= 1 or None, "
                f"got {self.rate}"
            )
        if self.burst is not None and self.burst < 1:
            raise StreamError(
                f"tenant {self.name!r} burst must be >= 1 or None, "
                f"got {self.burst}"
            )

    @property
    def bucket_size(self) -> Optional[int]:
        if self.rate is None:
            return None
        return self.burst if self.burst is not None else self.rate


class AdmissionController:
    """Deterministic per-tenant token buckets on the logical clock.

    Buckets start full and refill by ``rate`` tokens at each new tick —
    logical time, never the wall, so an overloaded replay sheds the
    *same* events every run.  An event from a tenant nobody registered
    is rejected (and counted): in a multi-tenant service, "unknown
    sender" is a policy violation, not a free ride.

    With no tenants registered the controller is disabled and admits
    everything — single-tenant deployments pay nothing.
    """

    def __init__(self, tenants: Sequence[TenantConfig] = ()) -> None:
        self.tenants: Dict[str, TenantConfig] = {}
        for tenant in tenants:
            if tenant.name in self.tenants:
                raise StreamError(f"duplicate tenant {tenant.name!r}")
            self.tenants[tenant.name] = tenant
        self._tokens: Dict[str, int] = {
            name: tenant.bucket_size
            for name, tenant in self.tenants.items()
            if tenant.bucket_size is not None
        }
        self._tick: Optional[int] = None
        self.admitted = 0
        self.shed = 0
        self.rejected_unknown = 0
        self.shed_by_tenant: Dict[str, int] = {
            name: 0 for name in self.tenants
        }

    @property
    def enabled(self) -> bool:
        return bool(self.tenants)

    def on_tick(self, tick: int) -> None:
        """Refill every bucket for a newly observed logical tick."""
        if self._tick is not None and tick <= self._tick:
            return
        elapsed = 1 if self._tick is None else tick - self._tick
        self._tick = tick
        for name, tokens in self._tokens.items():
            tenant = self.tenants[name]
            assert tenant.rate is not None and tenant.bucket_size is not None
            self._tokens[name] = min(
                tenant.bucket_size, tokens + tenant.rate * elapsed
            )

    def admit(self, tenant_name: Optional[str]) -> bool:
        """Spend one token for ``tenant_name``; False means shed."""
        if not self.enabled:
            self.admitted += 1
            return True
        if tenant_name is None or tenant_name not in self.tenants:
            self.rejected_unknown += 1
            return False
        if tenant_name not in self._tokens:  # unlimited tenant
            self.admitted += 1
            return True
        if self._tokens[tenant_name] >= 1:
            self._tokens[tenant_name] -= 1
            self.admitted += 1
            return True
        self.shed += 1
        self.shed_by_tenant[tenant_name] += 1
        return False

    def counters(self) -> Dict[str, int]:
        return {
            "admission_admitted": self.admitted,
            "admission_shed": self.shed,
            "admission_rejected_unknown": self.rejected_unknown,
        }


def source_tenant_of(
    tenants: Sequence[TenantConfig],
) -> Callable[[StreamEvent], Optional[str]]:
    """Assign pair-scoped events to tenants by stable hash of source.

    The CLI's stand-in for a real credential system: each sensor (by
    source address) consistently belongs to one tenant, so per-tenant
    rates mean something across a whole replay.  Broadcast events map
    to ``None`` (admission-exempt — the ISP's own control feed is not a
    tenant).
    """
    names = [tenant.name for tenant in tenants]
    if not names:
        raise StreamError("source_tenant_of needs >= 1 tenant")

    def tenant_of(event: StreamEvent) -> Optional[str]:
        if isinstance(event, ProbeEvent):
            src = event.path.src
        elif isinstance(event, ReachabilityEvent):
            src = event.src
        else:
            return None
        return names[stable_hash(src) % len(names)]

    return tenant_of


class StreamShard:
    """One shard's ingest-side state: screening, window, alarm debounce.

    Everything here is per-pair, so partitioning it is lossless.  The
    shard never diagnoses and never runs the episode lifecycle — those
    need the global picture and live behind the merger.
    """

    def __init__(
        self,
        index: int,
        asn_of: Callable[[str], Optional[int]],
        policy: str = "quarantine",
        window_width: int = 4,
        window_capacity: int = 0,
        open_after: int = 2,
        close_after: int = 2,
        degradation: Optional[DegradationReport] = None,
    ) -> None:
        self.index = index
        self._params = dict(
            asn_of=asn_of,
            policy=policy,
            window_width=window_width,
            window_capacity=window_capacity,
            open_after=open_after,
            close_after=close_after,
            degradation=degradation,
        )
        self.reset()

    def reset(self) -> None:
        """Wipe the shard to a just-constructed state.

        This is what a crash *is* to the supervisor: the shard object
        survives (its identity, routing slot, and configuration do not
        live in the failed process) but every byte of accumulated state
        is gone until a checkpoint restore and tail replay rebuild it.
        """
        p = self._params
        self.ingestor = StreamIngestor(
            p["asn_of"],
            p["policy"],
            expected_epochs=(EPOCH_PRE, EPOCH_POST),
            degradation=p["degradation"],
        )
        self.window = SlidingWindow(
            p["window_width"], capacity=p["window_capacity"]
        )
        self.alarms = PairAlarmTracker(
            open_after=p["open_after"], close_after=p["close_after"]
        )
        self.events_offered = 0
        self.events_admitted = 0
        self.seconds = {"ingest": 0.0, "window": 0.0, "detect": 0.0}

    def offer(self, event: StreamEvent) -> bool:
        """Screen and fold one pair-scoped event routed to this shard."""
        self.events_offered += 1
        started = time.perf_counter()
        admitted = self.ingestor.ingest(event)
        self.seconds["ingest"] += time.perf_counter() - started
        if admitted is None:
            return False
        self._observe(admitted)
        return True

    def observe_broadcast(self, event: StreamEvent) -> None:
        """Fold one already-screened broadcast event.

        Broadcasts are screened exactly once, at the router's control
        ingestor — re-screening here would double-count the validation
        report and fork the feed-dedup state.
        """
        self.events_offered += 1
        self._observe(event)

    def _observe(self, event: StreamEvent) -> None:
        self.events_admitted += 1
        started = time.perf_counter()
        self.window.observe(event)
        self.seconds["window"] += time.perf_counter() - started
        started = time.perf_counter()
        if isinstance(event, ProbeEvent):
            if event.path.epoch == EPOCH_POST:
                self.alarms.observe(event.path.pair, event.path.reached)
        elif isinstance(event, ReachabilityEvent):
            self.alarms.observe((event.src, event.dst), event.reached)
        elif isinstance(event, SensorDropoutEvent):
            self.alarms.forget(event.address)
        self.seconds["detect"] += time.perf_counter() - started

    # -------------------------------------------------------- checkpointing

    def state(self) -> Dict[str, object]:
        """A picklable snapshot of the shard for per-shard checkpoints.

        Wall-clock stage timings are excluded on purpose: they are not
        part of the deterministic state, and a recovered shard's timings
        legitimately differ from an uninterrupted one's.
        """
        return {
            "window": self.window.state(),
            "alarms": self.alarms.state(),
            "ingest": self.ingestor.state(),
            "events_offered": self.events_offered,
            "events_admitted": self.events_admitted,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rebuild the shard from a :meth:`state` snapshot."""
        self.window.restore_state(state["window"])
        self.alarms.restore_state(state["alarms"])
        self.ingestor.restore_state(state["ingest"])
        self.events_offered = state["events_offered"]
        self.events_admitted = state["events_admitted"]

    def stats(self) -> Dict[str, int]:
        """Per-shard accounting for the stream report."""
        counts = {
            "shard": self.index,
            "events_offered": self.events_offered,
            "events_admitted": self.events_admitted,
            "pairs_tracked": self.alarms.pairs_tracked(),
            "pairs_alarmed": len(self.alarms.alarmed_pairs()),
        }
        counts.update(
            {
                key: value
                for key, value in self.window.counters().items()
                if key in ("baseline_pairs", "current_pairs")
            }
        )
        return counts


class _MergeEngine(StreamEngine):
    """The global half of the sharded engine.

    Inherits the bounded diagnosis queue, coalescing/deferral
    backpressure, worker pool, journal hooks and cached-report resume
    from :class:`StreamEngine` unchanged — only *where state comes
    from* differs: ticks evict every shard window, transitions come
    from the cross-shard merger, and snapshots/control views are merged
    across the shard windows.
    """

    def __init__(
        self,
        shards: Sequence[StreamShard],
        merger: CrossShardMerger,
        router: Optional[ShardRouter] = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self._shards = list(shards)
        self._merger = merger
        self._router = router

    def advance(self, tick: int) -> List[EpisodeTransition]:
        for shard in self._shards:
            shard.window.evict(tick)
        transitions = self._merger.advance(tick, self._shard_alarms(tick))
        for transition in transitions:
            self._schedule(transition)
        return transitions

    def _shard_alarms(self, tick: int) -> List[Tuple[Pair, ...]]:
        """Each shard's alarmed-pair contribution for this tick's merge.

        Overridable: the supervised engine substitutes held/stale views
        for shards that are dark or running behind.
        """
        return [shard.alarms.alarmed_pairs() for shard in self._shards]

    def _schedule(self, transition: EpisodeTransition) -> None:
        try:
            super()._schedule(transition)
        except EpisodeOverflowError as exc:
            # Name the owning shard before the overflow crosses any
            # worker/process boundary — a bare BrokenProcessPool tells
            # an operator nothing about *which* shard's episode wedged
            # the queue.
            if exc.shard is None and self._router is not None and transition.pairs:
                exc.shard = self._router.shard_for_destination(
                    transition.pairs[0][1]
                )
            raise

    def _assemble(
        self,
    ) -> Tuple[Optional[MeasurementSnapshot], Optional[ControlPlaneView]]:
        windows = [shard.window for shard in self._shards]
        snapshot = merged_snapshot(windows, self.asn_of)
        control = (
            merged_control_view(windows, self.asx)
            if self.asx is not None
            else None
        )
        return snapshot, control


class ShardedStreamEngine:
    """N ingest shards behind one router, one merger, one work queue.

    Implements the same protocol as :class:`StreamEngine` (``offer`` /
    ``advance`` / ``drain`` / ``flush`` / ``close`` plus the counter
    accessors), so :func:`~repro.stream.replay.run_replay` and the CLI
    drive either interchangeably.  See the module docstring for the
    determinism contract.
    """

    def __init__(
        self,
        asn_of: Callable[[str], Optional[int]],
        diagnosers: Mapping[str, NetDiagnoser],
        shards: int = 2,
        asx: Optional[int] = None,
        lg_lookup: Optional[Callable] = None,
        window_width: int = 4,
        window_capacity: int = 0,
        open_after: int = 2,
        close_after: int = 2,
        policy: str = "quarantine",
        max_pending: int = 8,
        overflow_limit: int = 32,
        workers: int = 0,
        tenants: Sequence[TenantConfig] = (),
        tenant_of: Optional[Callable[[StreamEvent], Optional[str]]] = None,
        replicas: int = 32,
        degradation: Optional[DegradationReport] = None,
        on_report: Optional[Callable[[EpisodeReport], None]] = None,
        cached_reports: Optional[Mapping[int, EpisodeReport]] = None,
    ) -> None:
        self.router = ShardRouter(shards, asn_of=asn_of, replicas=replicas)
        self.shards = [
            StreamShard(
                index,
                asn_of,
                policy=policy,
                window_width=window_width,
                window_capacity=window_capacity,
                open_after=open_after,
                close_after=close_after,
                degradation=degradation,
            )
            for index in range(shards)
        ]
        # Broadcast events are screened once, here, before fan-out; the
        # global feed-dedup state must not be forked per shard.
        self.control_ingestor = StreamIngestor(
            asn_of,
            policy,
            expected_epochs=(EPOCH_PRE, EPOCH_POST),
            degradation=degradation,
        )
        self.merger = CrossShardMerger()
        self.admission = AdmissionController(tenants)
        self.tenant_of = tenant_of
        self._engine = self._make_merge_engine(
            asn_of=asn_of,
            diagnosers=diagnosers,
            asx=asx,
            lg_lookup=lg_lookup,
            window_width=window_width,
            open_after=open_after,
            close_after=close_after,
            policy=policy,
            max_pending=max_pending,
            overflow_limit=overflow_limit,
            workers=workers,
            degradation=None,
            on_report=on_report,
            cached_reports=cached_reports,
        )
        self.events_offered = 0
        self.events_admitted = 0
        self.events_broadcast = 0

    def _make_merge_engine(self, **kwargs) -> _MergeEngine:
        """Build the global merge engine; the supervised engine overrides
        this to slot in its breaker/poison-aware variant."""
        return _MergeEngine(
            self.shards, self.merger, router=self.router, **kwargs
        )

    # ----------------------------------------------------- engine protocol

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def lg_lookup(self):
        return self._engine.lg_lookup

    @lg_lookup.setter
    def lg_lookup(self, value) -> None:
        self._engine.lg_lookup = value

    @property
    def on_report(self):
        return self._engine.on_report

    @on_report.setter
    def on_report(self, hook) -> None:
        self._engine.on_report = hook

    @property
    def reports(self) -> List[EpisodeReport]:
        return self._engine.reports

    @property
    def latencies(self) -> List[int]:
        return self._engine.latencies

    @property
    def idle(self) -> bool:
        return self._engine.idle

    def offer(self, event: StreamEvent) -> bool:
        """Admit, route and fold one event.

        Pair-scoped events pass tenant admission, then route to their
        shard; control-plane and sensor-liveness events bypass admission
        (shedding the ISP's own feed or a dropout notice would corrupt
        every shard's view) and broadcast to all shards after a single
        screening pass.
        """
        self.events_offered += 1
        shard_index = self.router.route(event)
        if shard_index is None:
            self.events_broadcast += 1
            started = time.perf_counter()
            admitted = self.control_ingestor.ingest(event)
            self._engine.seconds["ingest"] += time.perf_counter() - started
            if admitted is None:
                return False
            for shard in self.shards:
                shard.observe_broadcast(admitted)
            self.events_admitted += 1
            return True
        if self.admission.enabled:
            tenant = self.tenant_of(event) if self.tenant_of else None
            if not self.admission.admit(tenant):
                return False
        if self.shards[shard_index].offer(event):
            self.events_admitted += 1
            return True
        return False

    def advance(self, tick: int) -> List[EpisodeTransition]:
        """Close a logical tick: refill admission buckets, evict every
        shard window, merge alarms, schedule diagnosis work."""
        self.admission.on_tick(tick)
        return self._engine.advance(tick)

    def drain(self, now: int) -> List[EpisodeReport]:
        return self._engine.drain(now)

    def flush(self, now: int) -> List[EpisodeReport]:
        return self._engine.flush(now)

    def close(self) -> None:
        self._engine.close()

    # ------------------------------------------------------------ counters

    def counters(self) -> Dict[str, int]:
        counts = self._engine.counters()
        counts["events_offered"] = self.events_offered
        counts["events_admitted"] = self.events_admitted
        counts["events_broadcast"] = self.events_broadcast
        counts["shards"] = self.n_shards
        counts.update(self.admission.counters())
        counts["cross_shard_episodes"] = self.merger.cross_shard_episodes
        return counts

    def ingest_counters(self) -> Dict[str, int]:
        """Summed screening accounting: every shard plus the control
        ingestor (each event is screened exactly once somewhere)."""
        totals: Dict[str, int] = {}
        for ingestor in [shard.ingestor for shard in self.shards] + [
            self.control_ingestor
        ]:
            for key, value in ingestor.counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def window_counters(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for shard in self.shards:
            for key, value in shard.window.counters().items():
                if key == "dark_sensors":
                    # Dark sensors broadcast to every shard; summing the
                    # identical copies would over-count a single outage.
                    totals[key] = max(totals.get(key, 0), value)
                else:
                    totals[key] = totals.get(key, 0) + value
        return totals

    def detector_counters(self) -> Dict[str, int]:
        counts = self.merger.counters()
        counts["pairs_tracked"] = sum(
            shard.alarms.pairs_tracked() for shard in self.shards
        )
        counts["pairs_alarmed"] = sum(
            len(shard.alarms.alarmed_pairs()) for shard in self.shards
        )
        return counts

    def stage_seconds(self) -> Dict[str, float]:
        totals = self._engine.stage_seconds()
        for shard in self.shards:
            for key, value in shard.seconds.items():
                totals[key] = totals.get(key, 0.0) + value
        return totals

    def shard_stats(self) -> List[Dict[str, int]]:
        """Per-shard balance view for the report and the benchmarks."""
        return [shard.stats() for shard in self.shards]
