"""Per-shard checkpoint store for supervised recovery.

A crashed shard must not replay the whole stream to catch up: the
supervisor periodically snapshots each healthy shard's state
(:meth:`~repro.stream.router.StreamShard.state` — window, alarm
tracker, ingestor accounting) and, on restart, restores the latest
snapshot and replays only the events offered since it was taken.

The on-disk format reuses the run-journal idiom
(:mod:`repro.experiments.journal`): a pickle header carrying a format
tag and run fingerprint, then one fsync'd pickle record per checkpoint.
A crash mid-append loses at most the checkpoint being written — the
previous one for that shard is still on disk and still sufficient,
because the supervisor keeps the replay tail until a *newer* checkpoint
lands.  A store built with ``path=None`` keeps checkpoints in memory
only, which is what replay-driven chaos tests use.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import CheckpointError
from repro.experiments.journal import append_pickle_record, iter_pickle_records

__all__ = ["CheckpointStore", "ShardCheckpoint"]

_FORMAT = "repro-shard-checkpoint-v1"


@dataclass(frozen=True)
class ShardCheckpoint:
    """One shard's state as of one logical tick."""

    shard: int
    tick: int
    state: Dict[str, Any]


class CheckpointStore:
    """Append-only store of per-shard checkpoints.

    Parameters
    ----------
    path:
        Checkpoint file location, or ``None`` for an in-memory store.
    fingerprint:
        Picklable, equality-comparable description of the run (seed,
        shard count, config...).  Loading a file whose fingerprint
        differs raises :class:`~repro.errors.CheckpointError` — mixing
        one run's checkpoints into another would silently corrupt
        recovery.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        fingerprint: Any = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.fingerprint = fingerprint
        self._latest: Dict[int, ShardCheckpoint] = {}
        self.checkpoints_saved = 0
        if self.path is not None and self.path.exists():
            for checkpoint in iter_pickle_records(
                self.path, _FORMAT, self.fingerprint, error_cls=CheckpointError
            ):
                self._latest[checkpoint.shard] = checkpoint

    def save(self, shard: int, tick: int, state: Dict[str, Any]) -> ShardCheckpoint:
        """Record ``shard``'s state as of ``tick`` (durably when on disk)."""
        checkpoint = ShardCheckpoint(shard=shard, tick=tick, state=state)
        if self.path is not None:
            append_pickle_record(
                self.path,
                checkpoint,
                {"format": _FORMAT, "fingerprint": self.fingerprint},
            )
        self._latest[shard] = checkpoint
        self.checkpoints_saved += 1
        return checkpoint

    def latest(self, shard: Optional[int] = None):
        """The newest checkpoint per shard (or for one ``shard``).

        Returns ``None`` when the shard has never checkpointed — the
        supervisor then restores from the shard's pristine reset state
        and replays the full tail.
        """
        if shard is not None:
            return self._latest.get(shard)
        return dict(self._latest)

    def counters(self) -> Dict[str, int]:
        return {
            "checkpoints_saved": self.checkpoints_saved,
            "shards_checkpointed": len(self._latest),
        }
