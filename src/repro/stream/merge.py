"""Cross-shard merging: one global episode story over N shard windows.

Sharding partitions *pairs*, not *failures*.  A core-link failure alarms
pairs whose destinations hash to different shards, and the
identifiability literature (Bartolini et al., arXiv:1903.10636; Ma et
al., arXiv:1509.06333) is blunt about what happens if each shard then
diagnoses alone: a shard that sees only a slice of the probe paths
crossing the suspect links can neither localise the failure nor even
know its verdict is under-determined.  So the sharded engine never
diagnoses per shard.  Shards own the *ingest-side* state (window slots,
pair alarm debounce — both cleanly per-pair); everything that needs the
global picture is merged here:

* :func:`merged_snapshot` unions the shards' usable pairs and rebuilds
  the :class:`~repro.core.pathset.PathStore` pair in sorted-pair order —
  byte for byte the order a single window's ``snapshot()`` uses, which
  is half of the bit-identical replay guarantee;
* :func:`merged_control_view` deduplicates the broadcast control-plane
  entries by ``(tick, seq)`` and sorts by ``seq`` — the same global
  arrival order a single window sorts by;
* :class:`CrossShardMerger` feeds the union of the shards' alarmed
  pairs into one global :class:`~repro.stream.episodes.EpisodeLifecycle`
  per tick, so episode ids, open/update/close edges and blast radii are
  exactly the single-shard ones.  It also counts how many episodes
  actually spanned shards — the number that justifies all of this.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.control_plane import ControlPlaneView
from repro.core.pathset import MeasurementSnapshot, PathStore
from repro.stream.episodes import EpisodeLifecycle, EpisodeTransition
from repro.stream.window import SlidingWindow

__all__ = ["merged_snapshot", "merged_control_view", "CrossShardMerger"]

Pair = Tuple[str, str]


def merged_snapshot(
    windows: Sequence[SlidingWindow],
    asn_of: Callable[[str], Optional[int]],
) -> Optional[MeasurementSnapshot]:
    """The batch-shaped snapshot over the union of shard windows.

    The router sends each pair's probes to exactly one shard, so the
    shards' usable-pair sets are disjoint and their union *is* the
    single-window usable set.  Stores are filled in globally sorted pair
    order, matching :meth:`SlidingWindow.snapshot` exactly.
    """
    owners: Dict[Pair, SlidingWindow] = {}
    for window in windows:
        for pair in window.usable_pairs():
            owners.setdefault(pair, window)
    if not owners:
        return None
    before, after = PathStore(), PathStore()
    for pair in sorted(owners):
        window = owners[pair]
        baseline = window.baseline_for(pair)
        current = window.current_for(pair)
        before.add(baseline[1])
        after.add(current[1])
    return MeasurementSnapshot(before=before, after=after, asn_of=asn_of)


def merged_control_view(
    windows: Sequence[SlidingWindow], asx_asn: int
) -> ControlPlaneView:
    """The global control-plane view over the shard windows.

    Control-plane events are broadcast to every shard (any shard's
    verdict may hinge on them), so each window holds a copy; dedup by
    ``(tick, seq)`` and sort by the globally monotonic ``seq`` — the
    same order a single window's ``control_view`` produces.
    """
    withdrawals: Dict[Tuple[int, int], object] = {}
    igp_downs: Dict[Tuple[int, int], object] = {}
    for window in windows:
        bgp_entries, igp_entries = window.feed_entries()
        for tick, seq, obs in bgp_entries:
            withdrawals.setdefault((tick, seq), obs)
        for tick, seq, obs in igp_entries:
            igp_downs.setdefault((tick, seq), obs)
    return ControlPlaneView(
        asx_asn=asx_asn,
        igp_link_down=tuple(
            igp_downs[key] for key in sorted(igp_downs, key=lambda k: k[1])
        ),
        withdrawals=tuple(
            withdrawals[key] for key in sorted(withdrawals, key=lambda k: k[1])
        ),
    )


class CrossShardMerger:
    """One global episode lifecycle fed by every shard's alarms.

    Each tick the sharded engine hands over the per-shard alarmed-pair
    tuples; the merger unions them (disjoint by construction — a pair
    alarms only on its owning shard) and advances the single lifecycle.
    Because :class:`PairAlarmTracker` partitions losslessly, the union
    equals the single-tracker alarmed set, and so the transitions are
    identical to single-shard replay.
    """

    def __init__(self) -> None:
        self.lifecycle = EpisodeLifecycle()
        self.cross_shard_episodes = 0
        self._open_span: int = 0

    def advance(
        self, tick: int, shard_alarms: Sequence[Tuple[Pair, ...]]
    ) -> List[EpisodeTransition]:
        """Merge this tick's shard alarms and advance the lifecycle."""
        merged: List[Pair] = []
        contributing = 0
        for alarmed in shard_alarms:
            if alarmed:
                contributing += 1
            merged.extend(alarmed)
        transitions = self.lifecycle.advance(tick, merged)
        # An episode "spans shards" if at any point while it was open,
        # more than one shard contributed alarmed pairs.  Count each
        # such episode once, at the first tick the span is observed.
        if self.lifecycle.open_episode is not None:
            if contributing > 1 and self._open_span <= 1:
                self.cross_shard_episodes += 1
            self._open_span = max(self._open_span, contributing)
        else:
            self._open_span = 0
        return transitions

    @property
    def episodes(self):
        return self.lifecycle.episodes

    @property
    def open_episode(self):
        return self.lifecycle.open_episode

    def counters(self) -> Dict[str, int]:
        counts = self.lifecycle.counters()
        counts["cross_shard_episodes"] = self.cross_shard_episodes
        return counts
