"""The streaming diagnosis engine: episodes in, diagnosis reports out.

:class:`StreamEngine` wires the stream pieces into the shape the batch
pipeline has always had — screen, assemble, diagnose — but continuously:

1. :meth:`offer` screens one event (:class:`~repro.stream.ingest.StreamIngestor`),
   folds it into the sliding window, and feeds the episode detector;
2. :meth:`advance` closes a logical tick: stale observations are
   evicted and the detector emits episode transitions, which become
   **diagnosis work** on a bounded queue;
3. :meth:`drain` retires queued work: for each transition it assembles
   the window's snapshot and runs every configured diagnoser, emitting
   one :class:`EpisodeReport` per transition in schedule order.

Backpressure is explicit, never silent.  The work queue holds at most
``max_pending`` transitions; an ``update`` for an episode already queued
is **coalesced** into the queued entry (``episodes_coalesced``), a
transition arriving at a full queue is **deferred** to the next drain
(``transitions_deferred``), and a deferral buffer past ``overflow_limit``
raises :class:`~repro.errors.EpisodeOverflowError` — the engine refuses
to shed diagnosis work without telling anyone.

Determinism: reports depend only on the event stream and the
configuration.  With ``workers > 1`` the per-variant diagnoses of each
drained transition run in a process pool — payloads are made picklable
by snapshotting ``asn_of`` into a :class:`StaticAsnMap` — and results
are merged back in (transition, variant) order, so parallel output is
bit-identical to serial.  ``nd-lg`` closures are not picklable and
always run inline in the parent, in the same merge order.
"""

from __future__ import annotations

import logging
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.core.control_plane import ControlPlaneView
from repro.core.protocol import Diagnoser
from repro.core.pathset import EPOCH_POST, EPOCH_PRE, MeasurementSnapshot
from repro.empathy.ensemble import EnsembleDisagreement
from repro.errors import EpisodeOverflowError, StreamError
from repro.faults import DegradationReport
from repro.stream.episodes import (
    CLOSE,
    OPEN,
    UPDATE,
    EpisodeDetector,
    EpisodeTransition,
)
from repro.stream.events import (
    ProbeEvent,
    ReachabilityEvent,
    SensorDropoutEvent,
    StreamEvent,
)
from repro.stream.ingest import StreamIngestor
from repro.stream.window import SlidingWindow

__all__ = [
    "StaticAsnMap",
    "EpisodeDiagnosis",
    "EpisodeReport",
    "StreamEngine",
]

logger = logging.getLogger(__name__)

Pair = Tuple[str, str]


@dataclass
class StaticAsnMap:
    """A picklable snapshot of the IP-to-AS mapping.

    Worker processes cannot unpickle a simulator-bound ``asn_of``
    method, so diagnosis payloads carry the mapping for exactly the
    addresses the snapshot mentions.  Calling it is what the diagnosers
    expect: address in, ASN (or ``None``) out.
    """

    table: Dict[str, Optional[int]]

    def __call__(self, address: str) -> Optional[int]:
        return self.table.get(address)


@dataclass(frozen=True)
class EpisodeDiagnosis:
    """One diagnoser's verdict inside an episode report.

    ``error`` carries the exception type name when the diagnoser could
    not cope with the window's partial inputs (best-effort empty
    hypothesis, same as the batch runner's degraded path).  ``verdict``
    is the ensemble agreement grade (``agree``/``partial``/``conflict``)
    when the diagnoser was an :class:`~repro.empathy.EnsembleDiagnoser`,
    ``None`` otherwise.
    """

    algorithm: str
    hypothesis: frozenset
    hypothesis_size: int
    fully_explained: bool
    error: Optional[str] = None
    verdict: Optional[str] = None


@dataclass(frozen=True)
class EpisodeReport:
    """One emitted diagnosis of one episode transition.

    ``report_index`` is the global emission index; it doubles as the
    :class:`~repro.experiments.journal.RunJournal` key (exposed as
    ``placement_index``) so a stream run checkpoints and resumes with
    the same machinery as a batch sweep.  ``latency_ticks`` is how many
    logical ticks the transition waited in the queue before diagnosis —
    the bounded-latency number the benchmarks track.
    """

    report_index: int
    episode_id: int
    trigger: str
    tick: int
    diagnosed_at: int
    pairs: Tuple[Pair, ...]
    diagnoses: Tuple[EpisodeDiagnosis, ...]

    @property
    def latency_ticks(self) -> int:
        return self.diagnosed_at - self.tick

    @property
    def placement_index(self) -> int:
        """Journal key (RunJournal stores results by this attribute)."""
        return self.report_index


@dataclass
class _PendingWork:
    """One queued transition awaiting diagnosis."""

    transition: EpisodeTransition


def _summarise(result) -> EpisodeDiagnosis:
    ensemble = result.details.get("ensemble") or {}
    return EpisodeDiagnosis(
        algorithm=result.algorithm,
        hypothesis=frozenset(result.hypothesis),
        hypothesis_size=result.hypothesis_size(),
        fully_explained=result.fully_explained,
        verdict=ensemble.get("verdict"),
    )


def _empty_diagnosis(label: str, error: Optional[str] = None) -> EpisodeDiagnosis:
    return EpisodeDiagnosis(
        algorithm=label,
        hypothesis=frozenset(),
        hypothesis_size=0,
        fully_explained=False,
        error=error,
    )


def _diagnose_payload(payload) -> EpisodeDiagnosis:
    """Worker-side diagnosis of one picklable (label, diagnoser,
    snapshot, control) payload; degrades to an empty verdict on any
    exception so a fragile diagnoser never kills the pool."""
    label, diagnoser, snapshot, control = payload
    try:
        return _summarise(
            diagnoser.diagnose(snapshot, control=control, lg_lookup=None)
        )
    except Exception as exc:
        return _empty_diagnosis(label, error=type(exc).__name__)


class StreamEngine:
    """Continuous diagnosis over an event stream.

    Parameters mirror the batch runner where a counterpart exists:
    ``diagnosers`` is the same label →
    :class:`~repro.core.protocol.Diagnoser` mapping, ``asx`` the
    cooperating ISP, ``lg_lookup`` the Looking Glass callback for
    ``nd-lg``, ``policy`` a :mod:`repro.validate` policy name.
    """

    def __init__(
        self,
        asn_of: Callable[[str], Optional[int]],
        diagnosers: Mapping[str, Diagnoser],
        asx: Optional[int] = None,
        lg_lookup: Optional[Callable] = None,
        window_width: int = 4,
        window_capacity: int = 0,
        open_after: int = 2,
        close_after: int = 2,
        policy: str = "quarantine",
        max_pending: int = 8,
        overflow_limit: int = 32,
        workers: int = 0,
        degradation: Optional[DegradationReport] = None,
        on_report: Optional[Callable[[EpisodeReport], None]] = None,
        cached_reports: Optional[Mapping[int, EpisodeReport]] = None,
    ) -> None:
        if max_pending < 1:
            raise StreamError(f"max_pending must be >= 1, got {max_pending}")
        if overflow_limit < 0:
            raise StreamError(
                f"overflow_limit must be >= 0, got {overflow_limit}"
            )
        self.asn_of = asn_of
        self.diagnosers = dict(diagnosers)
        self.asx = asx
        self.lg_lookup = lg_lookup
        self.ingestor = StreamIngestor(
            asn_of,
            policy,
            expected_epochs=(EPOCH_PRE, EPOCH_POST),
            degradation=degradation,
        )
        self.window = SlidingWindow(window_width, capacity=window_capacity)
        self.detector = EpisodeDetector(
            open_after=open_after, close_after=close_after
        )
        self.max_pending = max_pending
        self.overflow_limit = overflow_limit
        self.workers = workers
        self.on_report = on_report
        self.cached_reports = dict(cached_reports or {})
        self._pending: List[_PendingWork] = []
        self._deferred: List[_PendingWork] = []
        self._pool: Optional[ProcessPoolExecutor] = None
        self.reports: List[EpisodeReport] = []
        # accounting
        self.events_offered = 0
        self.events_admitted = 0
        self.transitions_scheduled = 0
        self.episodes_coalesced = 0
        self.transitions_deferred = 0
        self.reports_reused = 0
        self.diagnoses_failed = 0
        self.ensemble_verdicts = EnsembleDisagreement()
        self.latencies: List[int] = []
        self.seconds = {
            "ingest": 0.0,
            "window": 0.0,
            "detect": 0.0,
            "diagnose": 0.0,
        }

    # --------------------------------------------------------------- intake

    def offer(self, event: StreamEvent) -> bool:
        """Screen one event and fold it into the engine's state.

        Returns ``True`` when the event was admitted, ``False`` when the
        screening quarantined it.
        """
        self.events_offered += 1
        started = time.perf_counter()
        admitted = self.ingestor.ingest(event)
        self.seconds["ingest"] += time.perf_counter() - started
        if admitted is None:
            return False
        self.events_admitted += 1
        started = time.perf_counter()
        self.window.observe(admitted)
        self.seconds["window"] += time.perf_counter() - started
        started = time.perf_counter()
        if isinstance(admitted, ProbeEvent):
            if admitted.path.epoch == EPOCH_POST:
                self.detector.observe(admitted.path.pair, admitted.path.reached)
        elif isinstance(admitted, ReachabilityEvent):
            self.detector.observe(
                (admitted.src, admitted.dst), admitted.reached
            )
        elif isinstance(admitted, SensorDropoutEvent):
            self.detector.forget(admitted.address)
        self.seconds["detect"] += time.perf_counter() - started
        return True

    # ---------------------------------------------------------------- ticks

    def advance(self, tick: int) -> List[EpisodeTransition]:
        """Close a logical tick: evict stale state, detect transitions,
        schedule the resulting diagnosis work."""
        started = time.perf_counter()
        self.window.evict(tick)
        transitions = self.detector.advance(tick)
        self.seconds["detect"] += time.perf_counter() - started
        for transition in transitions:
            self._schedule(transition)
        return transitions

    def _schedule(self, transition: EpisodeTransition) -> None:
        self.transitions_scheduled += 1
        if transition.kind == UPDATE:
            for work in self._pending + self._deferred:
                queued = work.transition
                if (
                    queued.episode_id == transition.episode_id
                    and queued.kind != CLOSE
                ):
                    # Absorb: keep the queued kind (an open must still be
                    # reported as an open), diagnose the newest state.
                    work.transition = EpisodeTransition(
                        kind=queued.kind,
                        episode_id=queued.episode_id,
                        tick=queued.tick,
                        pairs=transition.pairs,
                    )
                    self.episodes_coalesced += 1
                    return
        if len(self._pending) < self.max_pending:
            self._pending.append(_PendingWork(transition))
            return
        self.transitions_deferred += 1
        if len(self._deferred) >= self.overflow_limit:
            raise EpisodeOverflowError(
                f"diagnosis queue full ({self.max_pending} pending, "
                f"{len(self._deferred)} deferred >= overflow_limit="
                f"{self.overflow_limit}); drain more often or widen the "
                "queue"
            )
        self._deferred.append(_PendingWork(transition))

    # ---------------------------------------------------------------- drain

    @property
    def idle(self) -> bool:
        """True when no diagnosis work is queued or deferred."""
        return not (self._pending or self._deferred)

    def drain(self, now: int) -> List[EpisodeReport]:
        """Retire the queued transitions (at most ``max_pending``),
        then promote deferred work into the freed queue slots."""
        batch, self._pending = self._pending, []
        promoted = self._deferred[: self.max_pending]
        self._deferred = self._deferred[self.max_pending:]
        self._pending.extend(promoted)
        if not batch:
            return []
        started = time.perf_counter()
        reports = self._diagnose_batch(batch, now)
        self.seconds["diagnose"] += time.perf_counter() - started
        for report in reports:
            self.reports.append(report)
            self.latencies.append(report.latency_ticks)
            if (
                self.on_report is not None
                and report.report_index not in self.cached_reports
            ):
                # Reused reports are already durable wherever the hook
                # writes (the resume journal) — only fresh ones go out.
                self.on_report(report)
        return reports

    def flush(self, now: int) -> List[EpisodeReport]:
        """Drain until no work remains (end-of-stream)."""
        reports: List[EpisodeReport] = []
        while not self.idle:
            reports.extend(self.drain(now))
        return reports

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # ---------------------------------------------------------- diagnosis

    def _static_asn_map(
        self, snapshot: MeasurementSnapshot, control: Optional[ControlPlaneView]
    ) -> StaticAsnMap:
        addresses = set()
        for store in (snapshot.before, snapshot.after):
            for path in store.paths():
                for hop in path.hops:
                    if isinstance(hop, str):
                        addresses.add(hop)
        if control is not None:
            for obs in control.igp_link_down:
                addresses.update((obs.address_a, obs.address_b))
            for obs in control.withdrawals:
                addresses.update((obs.at_address, obs.from_address))
        return StaticAsnMap(
            {address: self.asn_of(address) for address in sorted(addresses)}
        )

    def _assemble(
        self,
    ) -> Tuple[Optional[MeasurementSnapshot], Optional[ControlPlaneView]]:
        snapshot = self.window.snapshot(self.asn_of)
        control = (
            self.window.control_view(self.asx) if self.asx is not None else None
        )
        return snapshot, control

    def _diagnose_batch(
        self, batch: List[_PendingWork], now: int
    ) -> List[EpisodeReport]:
        """Diagnose a drained batch, serial or via the worker pool.

        Every transition in the batch sees the same window state (the
        window only changes in :meth:`offer`/:meth:`advance`), so the
        snapshot is assembled once per drain.
        """
        next_index = len(self.reports)
        cached: Dict[int, EpisodeReport] = {}
        live: List[Tuple[int, EpisodeTransition]] = []
        for offset, work in enumerate(batch):
            index = next_index + offset
            if index in self.cached_reports:
                cached[index] = self.cached_reports[index]
                self.reports_reused += 1
            else:
                live.append((index, work.transition))

        snapshot, control = (None, None)
        if any(t.kind != CLOSE for _i, t in live):
            snapshot, control = self._assemble()
        diagnosable = (
            snapshot is not None and snapshot.any_failure()
        )

        labels = list(self.diagnosers)
        use_pool = self.workers > 1 and diagnosable and any(
            t.kind != CLOSE for _i, t in live
        )
        pooled: Dict[Tuple[int, str], EpisodeDiagnosis] = {}
        if use_pool:
            jobs = []
            for index, transition in live:
                if transition.kind == CLOSE:
                    continue
                for label in labels:
                    if not self._pool_allowed(label, transition):
                        continue
                    jobs.append((index, label, transition))
            if jobs:
                if self._pool is None:
                    self._pool = ProcessPoolExecutor(max_workers=self.workers)
                static_map = self._static_asn_map(snapshot, control)
                picklable_snapshot = MeasurementSnapshot(
                    before=snapshot.before,
                    after=snapshot.after,
                    asn_of=static_map,
                )
                futures = [
                    (
                        (index, label),
                        self._pool.submit(
                            _diagnose_payload,
                            (
                                label,
                                self.diagnosers[label],
                                picklable_snapshot,
                                control,
                            ),
                        ),
                    )
                    for index, label, _transition in jobs
                ]
                for key, future in futures:
                    pooled[key] = future.result()

        reports: Dict[int, EpisodeReport] = dict(cached)
        for index, transition in live:
            diagnoses: List[EpisodeDiagnosis] = []
            if transition.kind != CLOSE and diagnosable:
                for label in labels:
                    diagnoser = self.diagnosers[label]
                    if (index, label) in pooled:
                        verdict = pooled[(index, label)]
                    else:
                        verdict = self._diagnose_inline(
                            label, diagnoser, snapshot, control,
                            transition=transition,
                        )
                    if verdict.error is not None:
                        self.diagnoses_failed += 1
                    if verdict.verdict is not None:
                        self.ensemble_verdicts.record(verdict.verdict)
                    diagnoses.append(verdict)
            reports[index] = EpisodeReport(
                report_index=index,
                episode_id=transition.episode_id,
                trigger=transition.kind,
                tick=transition.tick,
                diagnosed_at=now,
                pairs=transition.pairs,
                diagnoses=tuple(diagnoses),
            )
        return [reports[next_index + offset] for offset in range(len(batch))]

    def _pool_allowed(self, label: str, transition: EpisodeTransition) -> bool:
        """May this diagnoser's work for this transition use the pool?

        ``nd-lg`` closures are never picklable (``poolable`` is False);
        the supervised engine further excludes variants whose circuit
        breaker is not closed and poison-injected work (those must run
        inline, where the breaker observes the outcome
        deterministically).
        """
        return bool(getattr(self.diagnosers[label], "poolable", True))

    def _diagnose_inline(
        self,
        label: str,
        diagnoser: Diagnoser,
        snapshot: MeasurementSnapshot,
        control: Optional[ControlPlaneView],
        transition: Optional[EpisodeTransition] = None,
    ) -> EpisodeDiagnosis:
        try:
            return _summarise(
                diagnoser.diagnose(
                    snapshot, control=control, lg_lookup=self.lg_lookup
                )
            )
        except Exception as exc:  # best-effort: degrade, never crash
            logger.debug(
                "%s failed on window inputs (%s: %s); emitting an empty "
                "verdict",
                label, type(exc).__name__, exc,
            )
            return _empty_diagnosis(label, error=type(exc).__name__)

    # ------------------------------------------------------------- counters

    def counters(self) -> Dict[str, int]:
        """The engine's own accounting (window/detector/ingest counters
        are reported by their components)."""
        return {
            "events_offered": self.events_offered,
            "events_admitted": self.events_admitted,
            "transitions_scheduled": self.transitions_scheduled,
            "episodes_coalesced": self.episodes_coalesced,
            "transitions_deferred": self.transitions_deferred,
            "reports_emitted": len(self.reports),
            "reports_reused": self.reports_reused,
            "diagnoses_failed": self.diagnoses_failed,
            "ensemble_agree": self.ensemble_verdicts.agree,
            "ensemble_partial": self.ensemble_verdicts.partial,
            "ensemble_conflict": self.ensemble_verdicts.conflict,
        }

    # The accessor quartet below is the engine protocol the replay and
    # report layers consume; ShardedStreamEngine implements the same
    # four by aggregating across shards.

    def ingest_counters(self) -> Dict[str, int]:
        return self.ingestor.counters()

    def window_counters(self) -> Dict[str, int]:
        return self.window.counters()

    def detector_counters(self) -> Dict[str, int]:
        return self.detector.counters()

    def stage_seconds(self) -> Dict[str, float]:
        return dict(self.seconds)
