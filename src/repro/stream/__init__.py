"""Streaming diagnosis: online event ingestion, episodes, continuous runs.

The paper's troubleshooter runs *continuously* at AS-X — probe results,
BGP withdrawals and IGP link-down messages arrive as a stream (§3.3).
This package is that online layer over the existing batch machinery:

* :mod:`repro.stream.events` — typed events, the logical clock, and the
  append-only ``repro-event-log-v1`` format;
* :mod:`repro.stream.ingest` — per-event screening under the
  :mod:`repro.validate` policies (strict/repair/quarantine);
* :mod:`repro.stream.window` — sliding-window reconciliation into the
  batch :class:`~repro.core.pathset.MeasurementSnapshot` shape, bounded
  by :class:`~repro.netsim.cache.LruCache`;
* :mod:`repro.stream.episodes` — debounced, hysteretic failure-episode
  detection (no diagnosis storms on transient loss);
* :mod:`repro.stream.engine` — the orchestrator: bounded work queue,
  explicit backpressure, per-episode diagnosis with every configured
  :class:`~repro.core.diagnoser.NetDiagnoser` variant, bit-identical
  serial/parallel output;
* :mod:`repro.stream.replay` — deterministic replay of recorded rounds
  and fault plans (same log + seed ⇒ identical episode reports);
* :mod:`repro.stream.router` — consistent-hash sharding, per-tenant
  admission control, and the :class:`ShardedStreamEngine` scale-out
  engine (bit-identical to serial replay with admission disabled);
* :mod:`repro.stream.merge` — cross-shard snapshot/control/episode
  merging in global ``(tick, seq)`` order;
* :mod:`repro.stream.serve` — the asyncio ingest front end with bounded
  per-tenant queues, round-robin fair pumping, and graceful shutdown;
* :mod:`repro.stream.checkpoint` — per-shard checkpoints in the fsync'd
  torn-tail-tolerant journal format, for crash recovery;
* :mod:`repro.stream.supervise` — the self-healing layer: shard
  supervision with checkpointed restart and replay, per-variant circuit
  breakers, a dead-letter queue, and deterministic chaos injection via
  the :mod:`repro.faults` chaos modes.

CLI: ``python -m repro stream`` replays a configured stream (optionally
sharded via ``--shards`` / multi-tenant via ``--tenants`` / under
seeded chaos via ``--chaos``) and renders throughput, backpressure,
episode-latency and supervision statistics; ``--dlq PATH`` journals and
inspects dead letters.
"""

from repro.stream.engine import (
    EpisodeDiagnosis,
    EpisodeReport,
    StaticAsnMap,
    StreamEngine,
)
from repro.stream.episodes import (
    CLOSE,
    OPEN,
    UPDATE,
    Episode,
    EpisodeDetector,
    EpisodeLifecycle,
    EpisodeTransition,
    PairAlarmTracker,
)
from repro.stream.events import (
    EVENT_LOG_FORMAT,
    EventLogWriter,
    IgpLinkDownEvent,
    LogicalClock,
    ProbeEvent,
    ReachabilityEvent,
    SensorDropoutEvent,
    SensorHeartbeatEvent,
    StreamEvent,
    WithdrawalEvent,
    load_event_log,
    save_event_log,
    stream_event_from_dict,
    stream_event_to_dict,
)
from repro.stream.checkpoint import CheckpointStore, ShardCheckpoint
from repro.stream.ingest import StreamIngestor
from repro.stream.merge import (
    CrossShardMerger,
    merged_control_view,
    merged_snapshot,
)
from repro.stream.router import (
    AdmissionController,
    ShardedStreamEngine,
    ShardRouter,
    StreamShard,
    TenantConfig,
    source_tenant_of,
    stable_hash,
)
from repro.stream.serve import StreamServer
from repro.stream.supervise import (
    DLQ_FORMAT,
    CircuitBreaker,
    DeadLetterQueue,
    ShardSupervisor,
    SupervisedStreamEngine,
    SupervisionConfig,
    load_dead_letters,
)
from repro.stream.replay import (
    ReplayConfig,
    ReplayEpisodeInfo,
    ReplayLog,
    ReplaySetup,
    StreamRunResult,
    build_event_log,
    make_replay_setup,
    run_replay,
    run_stream_replay,
)
from repro.stream.window import SlidingWindow

__all__ = [
    "EVENT_LOG_FORMAT",
    "LogicalClock",
    "StreamEvent",
    "ProbeEvent",
    "ReachabilityEvent",
    "WithdrawalEvent",
    "IgpLinkDownEvent",
    "SensorHeartbeatEvent",
    "SensorDropoutEvent",
    "EventLogWriter",
    "save_event_log",
    "load_event_log",
    "stream_event_to_dict",
    "stream_event_from_dict",
    "StreamIngestor",
    "SlidingWindow",
    "OPEN",
    "UPDATE",
    "CLOSE",
    "Episode",
    "EpisodeTransition",
    "PairAlarmTracker",
    "EpisodeLifecycle",
    "EpisodeDetector",
    "stable_hash",
    "ShardRouter",
    "TenantConfig",
    "AdmissionController",
    "source_tenant_of",
    "StreamShard",
    "ShardedStreamEngine",
    "CrossShardMerger",
    "merged_snapshot",
    "merged_control_view",
    "StreamServer",
    "CheckpointStore",
    "ShardCheckpoint",
    "DLQ_FORMAT",
    "CircuitBreaker",
    "DeadLetterQueue",
    "ShardSupervisor",
    "SupervisedStreamEngine",
    "SupervisionConfig",
    "load_dead_letters",
    "StaticAsnMap",
    "EpisodeDiagnosis",
    "EpisodeReport",
    "StreamEngine",
    "ReplayConfig",
    "ReplaySetup",
    "ReplayEpisodeInfo",
    "ReplayLog",
    "StreamRunResult",
    "make_replay_setup",
    "build_event_log",
    "run_replay",
    "run_stream_replay",
]
