"""Per-event screening at the stream's front door.

The batch pipeline screens whole rounds at snapshot-assembly time
(:meth:`repro.validate.Validator.screen_store`); a stream cannot wait
for a round to complete.  :class:`StreamIngestor` screens each event the
moment it arrives, under the same three policies — ``strict`` raises the
same :class:`~repro.errors.ValidationError`, ``repair`` applies the same
canonical fixups, ``quarantine`` drops the record — so a corrupted
observation never reaches the window, the episode detector, or a
diagnoser.

Only probe events carry enough structure for the trace invariants;
control-plane events are screened against the feed invariants
*per-message* (a duplicate of an already-ingested message, or a message
whose feed sequence runs backwards per feed kind, is a violation).
Heartbeats, dropouts and bare reachability bits have no invariants to
lie about and always pass.

Accounting lands on the shared :class:`~repro.validate.ValidationReport`
(and optionally a :class:`~repro.faults.DegradationReport`) so the
stream CLI renders the same counters as the batch runner.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import StreamError
from repro.faults import DegradationReport
from repro.stream.events import (
    IgpLinkDownEvent,
    ProbeEvent,
    StreamEvent,
    WithdrawalEvent,
)
from repro.validate import (
    POLICIES,
    REPAIR,
    TRACE_EPOCH,
    Validator,
    check_probe_path,
    repair_probe_path,
)
from repro.validate.invariants import FEED_DUP, FEED_ORDER, Violation

__all__ = ["StreamIngestor"]


class StreamIngestor:
    """Screens stream events one at a time under a validation policy.

    ``asn_of`` is the address→ASN mapper the trace invariants need;
    ``expected_epochs`` the set of epoch tags the stream may carry
    (both ``pre`` and ``post`` are legitimate in a stream — only a tag
    outside the set is a stale replay).
    """

    def __init__(
        self,
        asn_of: Callable[[str], Optional[int]],
        policy: str,
        expected_epochs: Tuple[str, ...],
        degradation: Optional[DegradationReport] = None,
    ) -> None:
        if policy not in POLICIES:
            raise StreamError(
                f"unknown validation policy {policy!r}; "
                f"expected one of {', '.join(POLICIES)}"
            )
        self.asn_of = asn_of
        self.expected_epochs = tuple(expected_epochs)
        # Reuse the batch Validator for its policy dispatch + accounting;
        # the per-event screening below feeds its bookkeeping hooks.
        self.validator = Validator(policy=policy, degradation=degradation)
        self.events_screened = 0
        self.events_quarantined = 0
        self.events_repaired = 0
        # Per-feed-kind dedup/ordering state, mirroring check_feed but
        # incrementally: observations seen so far and highest seq.
        self._feed_seen: Dict[str, set] = {"igp": set(), "bgp": set()}
        self._feed_highest: Dict[str, Optional[int]] = {"igp": None, "bgp": None}

    @property
    def policy(self) -> str:
        return self.validator.policy

    @property
    def report(self):
        return self.validator.report

    def ingest(self, event: StreamEvent) -> Optional[StreamEvent]:
        """Screen one event.

        Returns the event (possibly with a repaired payload) when it may
        proceed, or ``None`` when it was quarantined.  Under ``strict`` a
        violation raises :class:`~repro.errors.ValidationError`.
        """
        self.events_screened += 1
        if isinstance(event, ProbeEvent):
            return self._ingest_probe(event)
        if isinstance(event, WithdrawalEvent):
            return self._ingest_feed(event, "bgp", event.observation)
        if isinstance(event, IgpLinkDownEvent):
            return self._ingest_feed(event, "igp", event.observation)
        return event

    # ---- probes

    def _ingest_probe(self, event: ProbeEvent) -> Optional[ProbeEvent]:
        path = event.path
        violations: List[Violation] = []
        if path.epoch not in self.expected_epochs:
            violations = check_probe_path(path, self.asn_of, self.expected_epochs[-1])
        else:
            violations = check_probe_path(path, self.asn_of, path.epoch)
        if not violations:
            return event
        self.validator._found(violations)  # raises under strict
        stale = any(v.invariant == TRACE_EPOCH for v in violations)
        report = self.validator.report
        if stale:
            report.stale_rounds_dropped += 1
            report.record_quarantine(TRACE_EPOCH)
            if self.validator.degradation is not None:
                self.validator.degradation.stale_rounds_dropped += 1
            self.events_quarantined += 1
            return None
        if self.policy == REPAIR:
            repaired, fixups = repair_probe_path(path, self.asn_of)
            report.traces_repaired += 1
            for fixup in fixups:
                report.record_repair(fixup)
            if self.validator.degradation is not None:
                self.validator.degradation.traces_repaired += 1
            self.events_repaired += 1
            return ProbeEvent(tick=event.tick, seq=event.seq, path=repaired)
        report.traces_quarantined += 1
        report.record_quarantine(violations[0].invariant)
        if self.validator.degradation is not None:
            self.validator.degradation.traces_quarantined += 1
        self.events_quarantined += 1
        return None

    # ---- control-plane feeds

    def _ingest_feed(self, event, kind: str, observation) -> Optional[StreamEvent]:
        """Incremental FEED_DUP / FEED_ORDER screening for one message.

        A stream has no "whole feed" to sort, so ``repair`` degrades to
        ``quarantine`` here: dropping the out-of-order duplicate *is*
        the canonical incremental fixup (re-sorting history would mean
        rewriting already-consumed events).
        """
        violations: List[Violation] = []
        record = f"{kind} feed message seq={getattr(observation, 'seq', None)}"
        if observation in self._feed_seen[kind]:
            violations.append(
                Violation(FEED_DUP, record, "duplicate feed message")
            )
        seq = getattr(observation, "seq", None)
        sequenced = seq is not None and seq >= 0
        highest = self._feed_highest[kind]
        if not violations and sequenced and highest is not None and seq < highest:
            violations.append(
                Violation(
                    FEED_ORDER,
                    record,
                    f"sequence ran backwards ({highest} -> {seq})",
                )
            )
        if not violations:
            self._feed_seen[kind].add(observation)
            if sequenced:
                self._feed_highest[kind] = seq
            return event
        self.validator._found(violations)  # raises under strict
        report = self.validator.report
        report.feed_messages_quarantined += 1
        for violation in violations:
            report.record_quarantine(violation.invariant)
        if self.validator.degradation is not None:
            self.validator.degradation.feed_messages_quarantined += 1
        self.events_quarantined += 1
        return None

    def counters(self) -> Dict[str, int]:
        """Ingest accounting for the stream report."""
        return {
            "events_screened": self.events_screened,
            "events_quarantined": self.events_quarantined,
            "events_repaired": self.events_repaired,
        }

    # -------------------------------------------------------- checkpointing

    def state(self) -> Dict[str, object]:
        """A picklable snapshot of the screening state for checkpoints.

        Captures the counters, the per-feed dedup/ordering state, and a
        deep copy of the validation report — everything a recovered
        shard needs so re-screening its replayed tail lands on the same
        totals as an uninterrupted run.  The shared
        :class:`~repro.faults.DegradationReport` (if any) is deliberately
        *not* captured: it aggregates across shards and survives a
        single shard's crash.
        """
        return {
            "events_screened": self.events_screened,
            "events_quarantined": self.events_quarantined,
            "events_repaired": self.events_repaired,
            "feed_seen": {kind: set(seen) for kind, seen in self._feed_seen.items()},
            "feed_highest": dict(self._feed_highest),
            "report": copy.deepcopy(self.validator.report),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rebuild the screening state from a :meth:`state` snapshot."""
        self.events_screened = state["events_screened"]
        self.events_quarantined = state["events_quarantined"]
        self.events_repaired = state["events_repaired"]
        self._feed_seen = {
            kind: set(seen) for kind, seen in state["feed_seen"].items()
        }
        self._feed_highest = dict(state["feed_highest"])
        self.validator.report = copy.deepcopy(state["report"])
