"""Failure-episode detection: debounced alarms, hysteretic clearing.

Diagnosing on every failed probe would melt the engine the moment a
flaky link drops two packets — the classic diagnosis storm.  Following
the consecutive-observation rule of
:class:`~repro.measurement.detection.FailureDetector` (§6 of the paper:
confirm a failure before invoking the troubleshooter), a pair **alarms**
only after ``open_after`` consecutive failed observations and **clears**
only after ``close_after`` consecutive successes — the asymmetry is the
hysteresis that stops a half-recovered pair from flapping the episode
open and closed.

An **episode** is the engine's unit of diagnosis work: it opens when the
first pair alarms while none were alarmed, updates when the alarmed set
changes while open, and closes when the last alarmed pair clears.  The
detector emits :class:`EpisodeTransition` records; the engine schedules
diagnosis work off those, never off raw probe results.

The detector is split into two halves so the sharded engine can
partition one and keep the other global:

* :class:`PairAlarmTracker` holds the per-pair debounce state.  Pairs
  partition cleanly across shards (each pair's counters depend only on
  that pair's own observations), so each shard owns one tracker.
* :class:`EpisodeLifecycle` holds the open/update/close state machine.
  Episode identity is global — a failure whose suspect links span
  shards is still *one* episode — so the cross-shard merger owns
  exactly one lifecycle and feeds it the union of shard alarms.

:class:`EpisodeDetector` composes the two and remains the single-shard
surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import StreamError

__all__ = [
    "OPEN",
    "UPDATE",
    "CLOSE",
    "Episode",
    "EpisodeTransition",
    "PairAlarmTracker",
    "EpisodeLifecycle",
    "EpisodeDetector",
]

Pair = Tuple[str, str]

OPEN = "open"
UPDATE = "update"
CLOSE = "close"


@dataclass(frozen=True)
class EpisodeTransition:
    """One lifecycle step of one episode, at one logical tick.

    ``pairs`` is the alarmed set at the moment of the transition (empty
    for a close — nothing is failing any more, which is the point).
    """

    kind: str
    episode_id: int
    tick: int
    pairs: Tuple[Pair, ...]


@dataclass
class Episode:
    """One contiguous failure episode.

    ``pairs_ever`` accumulates every pair that alarmed during the
    episode — the closing report summarises the whole blast radius, not
    just whoever happened to still be failing at the end.
    """

    episode_id: int
    opened_at: int
    closed_at: Optional[int] = None
    active_pairs: Tuple[Pair, ...] = ()
    pairs_ever: Set[Pair] = field(default_factory=set)

    @property
    def is_open(self) -> bool:
        return self.closed_at is None


class _PairAlarm:
    """Debounce/hysteresis state for one probe pair."""

    __slots__ = ("fails", "successes", "alarmed")

    def __init__(self) -> None:
        self.fails = 0
        self.successes = 0
        self.alarmed = False


class PairAlarmTracker:
    """The shardable half of the detector: per-pair debounce state.

    A pair's alarm depends only on its own observation sequence, so any
    partition of pairs across trackers yields, pair for pair, the same
    alarms the single tracker would — which is the keystone of the
    sharded engine's bit-identical replay guarantee.
    """

    def __init__(self, open_after: int = 2, close_after: int = 2) -> None:
        if open_after < 1 or close_after < 1:
            raise StreamError(
                "episode debounce thresholds must be >= 1 "
                f"(open_after={open_after}, close_after={close_after})"
            )
        self.open_after = open_after
        self.close_after = close_after
        self._alarms: Dict[Pair, _PairAlarm] = {}
        self.observations = 0

    def observe(self, pair: Pair, reached: bool) -> None:
        """Fold one reachability observation (probe or ping) for a pair."""
        self.observations += 1
        alarm = self._alarms.setdefault(pair, _PairAlarm())
        if reached:
            alarm.successes += 1
            alarm.fails = 0
            if alarm.alarmed and alarm.successes >= self.close_after:
                alarm.alarmed = False
        else:
            alarm.fails += 1
            alarm.successes = 0
            if alarm.fails >= self.open_after:
                alarm.alarmed = True

    def forget(self, pair_member: str) -> None:
        """Drop alarm state for every pair touching a dark sensor.

        A sensor that stopped reporting is not *failing* — its silence
        must not keep an episode open forever.
        """
        for pair in [p for p in self._alarms if pair_member in p]:
            del self._alarms[pair]

    def alarmed_pairs(self) -> Tuple[Pair, ...]:
        return tuple(
            sorted(pair for pair, alarm in self._alarms.items() if alarm.alarmed)
        )

    def pairs_tracked(self) -> int:
        return len(self._alarms)

    # -------------------------------------------------------- checkpointing

    def state(self) -> Dict[str, object]:
        """A picklable snapshot of the debounce state for checkpoints."""
        return {
            "alarms": [
                (pair, alarm.fails, alarm.successes, alarm.alarmed)
                for pair, alarm in sorted(self._alarms.items())
            ],
            "observations": self.observations,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rebuild the tracker from a :meth:`state` snapshot."""
        self._alarms = {}
        for pair, fails, successes, alarmed in state["alarms"]:
            alarm = _PairAlarm()
            alarm.fails = fails
            alarm.successes = successes
            alarm.alarmed = alarmed
            self._alarms[pair] = alarm
        self.observations = state["observations"]


class EpisodeLifecycle:
    """The global half of the detector: the open/update/close machine.

    Owns episode identity (ids, the open episode, history).  Feed it the
    complete alarmed set each tick — whether from one tracker or the
    union of many shards' trackers — and it emits the transitions.
    """

    def __init__(self) -> None:
        self._episode: Optional[Episode] = None
        self._next_id = 0
        self.episodes: List[Episode] = []
        self.transitions_emitted = 0

    @property
    def open_episode(self) -> Optional[Episode]:
        return self._episode

    def advance(
        self, tick: int, alarmed: Iterable[Pair]
    ) -> List[EpisodeTransition]:
        """Evaluate the lifecycle against this tick's full alarmed set."""
        alarmed = tuple(sorted(alarmed))
        transitions: List[EpisodeTransition] = []
        episode = self._episode
        if episode is None:
            if alarmed:
                episode = Episode(
                    episode_id=self._next_id,
                    opened_at=tick,
                    active_pairs=alarmed,
                    pairs_ever=set(alarmed),
                )
                self._next_id += 1
                self._episode = episode
                self.episodes.append(episode)
                transitions.append(
                    EpisodeTransition(OPEN, episode.episode_id, tick, alarmed)
                )
        elif not alarmed:
            episode.closed_at = tick
            episode.active_pairs = ()
            self._episode = None
            transitions.append(
                EpisodeTransition(CLOSE, episode.episode_id, tick, ())
            )
        elif alarmed != episode.active_pairs:
            episode.active_pairs = alarmed
            episode.pairs_ever.update(alarmed)
            transitions.append(
                EpisodeTransition(UPDATE, episode.episode_id, tick, alarmed)
            )
        self.transitions_emitted += len(transitions)
        return transitions

    def counters(self) -> Dict[str, int]:
        return {
            "episodes_total": len(self.episodes),
            "episodes_open": 1 if self._episode is not None else 0,
            "transitions": self.transitions_emitted,
        }


class EpisodeDetector:
    """Turns per-pair reachability observations into episode transitions.

    The single-shard composition of :class:`PairAlarmTracker` and
    :class:`EpisodeLifecycle`; the sharded engine wires the same two
    classes together across shard boundaries instead.
    """

    def __init__(self, open_after: int = 2, close_after: int = 2) -> None:
        self._tracker = PairAlarmTracker(open_after, close_after)
        self._lifecycle = EpisodeLifecycle()

    # ------------------------------------------------------- observations

    @property
    def open_after(self) -> int:
        return self._tracker.open_after

    @property
    def close_after(self) -> int:
        return self._tracker.close_after

    @property
    def observations(self) -> int:
        return self._tracker.observations

    def observe(self, pair: Pair, reached: bool) -> None:
        self._tracker.observe(pair, reached)

    def forget(self, pair_member: str) -> None:
        self._tracker.forget(pair_member)

    # -------------------------------------------------------- transitions

    def alarmed_pairs(self) -> Tuple[Pair, ...]:
        return self._tracker.alarmed_pairs()

    @property
    def episodes(self) -> List[Episode]:
        return self._lifecycle.episodes

    @property
    def transitions_emitted(self) -> int:
        return self._lifecycle.transitions_emitted

    @property
    def open_episode(self) -> Optional[Episode]:
        return self._lifecycle.open_episode

    def advance(self, tick: int) -> List[EpisodeTransition]:
        """Evaluate episode lifecycle after a tick's observations landed."""
        return self._lifecycle.advance(tick, self._tracker.alarmed_pairs())

    def counters(self) -> Dict[str, int]:
        """Detector accounting for the stream report."""
        counts = {
            "pairs_tracked": self._tracker.pairs_tracked(),
            "pairs_alarmed": len(self.alarmed_pairs()),
        }
        counts.update(self._lifecycle.counters())
        return counts
