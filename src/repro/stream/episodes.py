"""Failure-episode detection: debounced alarms, hysteretic clearing.

Diagnosing on every failed probe would melt the engine the moment a
flaky link drops two packets — the classic diagnosis storm.  Following
the consecutive-observation rule of
:class:`~repro.measurement.detection.FailureDetector` (§6 of the paper:
confirm a failure before invoking the troubleshooter), a pair **alarms**
only after ``open_after`` consecutive failed observations and **clears**
only after ``close_after`` consecutive successes — the asymmetry is the
hysteresis that stops a half-recovered pair from flapping the episode
open and closed.

An **episode** is the engine's unit of diagnosis work: it opens when the
first pair alarms while none were alarmed, updates when the alarmed set
changes while open, and closes when the last alarmed pair clears.  The
detector emits :class:`EpisodeTransition` records; the engine schedules
diagnosis work off those, never off raw probe results.

The detector is split into two halves so the sharded engine can
partition one and keep the other global:

* :class:`PairAlarmTracker` holds the per-pair debounce state.  Pairs
  partition cleanly across shards (each pair's counters depend only on
  that pair's own observations), so each shard owns one tracker.  The
  implementation lives in :mod:`repro.core.streak` — it is the same
  streak machine the batch
  :class:`~repro.measurement.detection.FailureDetector` runs at
  ``close_after=1`` (batch rounds are converged snapshots, so a single
  good round proves recovery; live streams keep the hysteresis) — and
  is re-exported here under its historical name.
* :class:`EpisodeLifecycle` holds the open/update/close state machine.
  Episode identity is global — a failure whose suspect links span
  shards is still *one* episode — so the cross-shard merger owns
  exactly one lifecycle and feeds it the union of shard alarms.  It
  also accounts **flaps**: episodes that reopen within ``flap_window``
  ticks of the previous close, the churn signature hysteresis alone
  cannot surface.

:class:`EpisodeDetector` composes the two and remains the single-shard
surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.streak import Pair, PairAlarmTracker
from repro.errors import StreamError

__all__ = [
    "OPEN",
    "UPDATE",
    "CLOSE",
    "DEFAULT_FLAP_WINDOW",
    "Episode",
    "EpisodeTransition",
    "PairAlarmTracker",
    "EpisodeLifecycle",
    "EpisodeDetector",
]

#: An episode reopening within this many ticks of the previous close
#: counts as a flap (the default for :class:`EpisodeLifecycle`).
DEFAULT_FLAP_WINDOW = 4

OPEN = "open"
UPDATE = "update"
CLOSE = "close"


@dataclass(frozen=True)
class EpisodeTransition:
    """One lifecycle step of one episode, at one logical tick.

    ``pairs`` is the alarmed set at the moment of the transition (empty
    for a close — nothing is failing any more, which is the point).
    """

    kind: str
    episode_id: int
    tick: int
    pairs: Tuple[Pair, ...]


@dataclass
class Episode:
    """One contiguous failure episode.

    ``pairs_ever`` accumulates every pair that alarmed during the
    episode — the closing report summarises the whole blast radius, not
    just whoever happened to still be failing at the end.
    """

    episode_id: int
    opened_at: int
    closed_at: Optional[int] = None
    active_pairs: Tuple[Pair, ...] = ()
    pairs_ever: Set[Pair] = field(default_factory=set)

    @property
    def is_open(self) -> bool:
        return self.closed_at is None


class EpisodeLifecycle:
    """The global half of the detector: the open/update/close machine.

    Owns episode identity (ids, the open episode, history).  Feed it the
    complete alarmed set each tick — whether from one tracker or the
    union of many shards' trackers — and it emits the transitions.

    An open arriving within ``flap_window`` ticks of the previous close
    is counted as a **flap**: the pair-level hysteresis absorbs probe
    jitter, but a genuinely flapping link reopens episodes faster than
    any sane ``close_after`` can suppress, and operators need that
    churn visible (``flaps`` in :meth:`counters`).
    """

    def __init__(self, flap_window: int = DEFAULT_FLAP_WINDOW) -> None:
        if flap_window < 0:
            raise StreamError(
                f"flap_window must be >= 0, got {flap_window}"
            )
        self.flap_window = flap_window
        self._episode: Optional[Episode] = None
        self._next_id = 0
        self._last_closed_at: Optional[int] = None
        self.episodes: List[Episode] = []
        self.transitions_emitted = 0
        self.flaps = 0

    @property
    def open_episode(self) -> Optional[Episode]:
        return self._episode

    def advance(
        self, tick: int, alarmed: Iterable[Pair]
    ) -> List[EpisodeTransition]:
        """Evaluate the lifecycle against this tick's full alarmed set."""
        alarmed = tuple(sorted(alarmed))
        transitions: List[EpisodeTransition] = []
        episode = self._episode
        if episode is None:
            if alarmed:
                episode = Episode(
                    episode_id=self._next_id,
                    opened_at=tick,
                    active_pairs=alarmed,
                    pairs_ever=set(alarmed),
                )
                self._next_id += 1
                self._episode = episode
                self.episodes.append(episode)
                if (
                    self._last_closed_at is not None
                    and tick - self._last_closed_at <= self.flap_window
                ):
                    self.flaps += 1
                transitions.append(
                    EpisodeTransition(OPEN, episode.episode_id, tick, alarmed)
                )
        elif not alarmed:
            episode.closed_at = tick
            episode.active_pairs = ()
            self._episode = None
            self._last_closed_at = tick
            transitions.append(
                EpisodeTransition(CLOSE, episode.episode_id, tick, ())
            )
        elif alarmed != episode.active_pairs:
            episode.active_pairs = alarmed
            episode.pairs_ever.update(alarmed)
            transitions.append(
                EpisodeTransition(UPDATE, episode.episode_id, tick, alarmed)
            )
        self.transitions_emitted += len(transitions)
        return transitions

    def counters(self) -> Dict[str, int]:
        return {
            "episodes_total": len(self.episodes),
            "episodes_open": 1 if self._episode is not None else 0,
            "transitions": self.transitions_emitted,
            "flaps": self.flaps,
        }


class EpisodeDetector:
    """Turns per-pair reachability observations into episode transitions.

    The single-shard composition of :class:`PairAlarmTracker` and
    :class:`EpisodeLifecycle`; the sharded engine wires the same two
    classes together across shard boundaries instead.
    """

    def __init__(self, open_after: int = 2, close_after: int = 2) -> None:
        self._tracker = PairAlarmTracker(open_after, close_after)
        self._lifecycle = EpisodeLifecycle()

    # ------------------------------------------------------- observations

    @property
    def open_after(self) -> int:
        return self._tracker.open_after

    @property
    def close_after(self) -> int:
        return self._tracker.close_after

    @property
    def observations(self) -> int:
        return self._tracker.observations

    def observe(self, pair: Pair, reached: bool) -> None:
        self._tracker.observe(pair, reached)

    def forget(self, pair_member: str) -> None:
        self._tracker.forget(pair_member)

    # -------------------------------------------------------- transitions

    def alarmed_pairs(self) -> Tuple[Pair, ...]:
        return self._tracker.alarmed_pairs()

    @property
    def episodes(self) -> List[Episode]:
        return self._lifecycle.episodes

    @property
    def transitions_emitted(self) -> int:
        return self._lifecycle.transitions_emitted

    @property
    def open_episode(self) -> Optional[Episode]:
        return self._lifecycle.open_episode

    def advance(self, tick: int) -> List[EpisodeTransition]:
        """Evaluate episode lifecycle after a tick's observations landed."""
        return self._lifecycle.advance(tick, self._tracker.alarmed_pairs())

    def counters(self) -> Dict[str, int]:
        """Detector accounting for the stream report."""
        counts = {
            "pairs_tracked": self._tracker.pairs_tracked(),
            "pairs_alarmed": len(self.alarmed_pairs()),
        }
        counts.update(self._lifecycle.counters())
        return counts
