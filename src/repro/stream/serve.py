"""Asyncio ingest front end: bounded per-tenant queues, fair pumping.

The engine itself is synchronous and deterministic; what a deployment
needs in front of it is an *ingress* that absorbs bursty concurrent
producers without letting one tenant starve the rest.
:class:`StreamServer` is that layer:

* :meth:`submit` enqueues one event onto its tenant's bounded queue —
  a full queue **sheds** the event (counted per tenant, never silent),
  which is the only place the serve layer drops anything;
* :meth:`advance` closes a logical tick: queued events are selected
  **round-robin across tenants** (one event per tenant per turn, tenant
  names in sorted order) up to ``max_events_per_tick``, so a flooding
  tenant can at most claim its fair share of the tick budget;
* the selected events are offered to the engine **sorted by ``seq``** —
  whatever interleaving the async producers arrived in, the engine sees
  the canonical log order, which keeps replay-grade determinism through
  the async boundary.

The fairness/shedding here is queue-level (who gets *scheduled*); the
engine's :class:`~repro.stream.router.AdmissionController` is
rate-level (who gets *admitted* over time).  A deployment typically
wants both.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional

from repro.errors import StreamError
from repro.stream.engine import EpisodeReport
from repro.stream.events import StreamEvent

__all__ = ["StreamServer"]

DEFAULT_TENANT = "default"


class StreamServer:
    """Bounded, tenant-fair asyncio ingress for a stream engine.

    ``engine`` is any engine-protocol object
    (:class:`~repro.stream.engine.StreamEngine` or
    :class:`~repro.stream.router.ShardedStreamEngine`); ``tenant_of``
    maps an event to its tenant name (``None`` → the shared
    ``"default"`` queue); ``queue_depth`` bounds each tenant queue;
    ``max_events_per_tick`` caps how many queued events one
    :meth:`advance` pumps (``None`` = all of them).
    """

    def __init__(
        self,
        engine,
        queue_depth: int = 1024,
        tenant_of: Optional[Callable[[StreamEvent], Optional[str]]] = None,
        max_events_per_tick: Optional[int] = None,
    ) -> None:
        if queue_depth < 1:
            raise StreamError(f"queue_depth must be >= 1, got {queue_depth}")
        if max_events_per_tick is not None and max_events_per_tick < 1:
            raise StreamError(
                f"max_events_per_tick must be >= 1 or None, "
                f"got {max_events_per_tick}"
            )
        self.engine = engine
        self.queue_depth = queue_depth
        self.tenant_of = tenant_of
        self.max_events_per_tick = max_events_per_tick
        self._queues: Dict[str, Deque[StreamEvent]] = {}
        self._tick = 0
        self._closed = False
        self.events_submitted = 0
        self.events_pumped = 0
        self.events_shed = 0
        self.shed_by_tenant: Dict[str, int] = {}

    # ------------------------------------------------------------- intake

    def _tenant(self, event: StreamEvent) -> str:
        if self.tenant_of is None:
            return DEFAULT_TENANT
        return self.tenant_of(event) or DEFAULT_TENANT

    async def submit(self, event: StreamEvent) -> bool:
        """Enqueue one event; ``False`` means its queue was full (shed)."""
        if self._closed:
            raise StreamError("cannot submit to a closed StreamServer")
        self.events_submitted += 1
        tenant = self._tenant(event)
        queue = self._queues.setdefault(tenant, deque())
        if len(queue) >= self.queue_depth:
            self.events_shed += 1
            self.shed_by_tenant[tenant] = self.shed_by_tenant.get(tenant, 0) + 1
            return False
        queue.append(event)
        # Yield so concurrent producers interleave like real ingress.
        await asyncio.sleep(0)
        return True

    # -------------------------------------------------------------- pump

    def _select(self) -> List[StreamEvent]:
        """Round-robin one event per tenant per turn, sorted-name order,
        until the tick budget (or every queue) is exhausted."""
        budget = self.max_events_per_tick
        selected: List[StreamEvent] = []
        while budget is None or len(selected) < budget:
            progressed = False
            for tenant in sorted(self._queues):
                queue = self._queues[tenant]
                if not queue:
                    continue
                selected.append(queue.popleft())
                progressed = True
                if budget is not None and len(selected) >= budget:
                    break
            if not progressed:
                break
        return selected

    async def advance(self, tick: int) -> List[EpisodeReport]:
        """Pump this tick's fair share into the engine and close the tick.

        Selected events are offered in ``seq`` order — the async arrival
        interleaving never reaches the engine, so serve-driven runs stay
        bit-identical to direct replay.
        """
        for event in sorted(self._select(), key=lambda e: e.seq):
            self.engine.offer(event)
            self.events_pumped += 1
        self._tick = max(self._tick, tick)
        self.engine.advance(tick)
        reports = self.engine.drain(tick)
        await asyncio.sleep(0)
        return reports

    @property
    def backlog(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    # ---------------------------------------------------------- shutdown

    async def aclose(self) -> None:
        """Graceful shutdown: drain every tenant queue, retire every
        queued diagnosis, then release the engine's resources.

        Runs grace ticks past the last pumped tick until both the serve
        backlog and the engine's work queue are empty — nothing a
        producer successfully submitted is dropped by stopping — then
        closes the engine (worker pool, dead-letter journal).
        Idempotent: a second close is a no-op.
        """
        if self._closed:
            return
        self._closed = True
        tick = self._tick
        while self.backlog or not self.engine.idle:
            tick += 1
            await self.advance(tick)
            self.engine.flush(tick)
        self.engine.close()

    def close(self) -> None:
        """Synchronous :meth:`aclose` for non-async teardown paths."""
        asyncio.run(self.aclose())

    async def __aenter__(self) -> "StreamServer":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.aclose()

    async def run(
        self, events: Iterable[StreamEvent], last_tick: Optional[int] = None
    ) -> List[EpisodeReport]:
        """Convenience driver: submit and advance a whole event log.

        Groups events by tick, pumps each tick in order, then shuts down
        gracefully (grace ticks until the backlog and the engine's queue
        are empty — a tick-budget backlog drains a budget per tick).
        """
        by_tick: Dict[int, List[StreamEvent]] = {}
        for event in events:
            by_tick.setdefault(event.tick, []).append(event)
        final = max(by_tick) if by_tick else 0
        if last_tick is not None:
            final = max(final, last_tick)
        for tick in range(final + 1):
            for event in by_tick.get(tick, []):
                await self.submit(event)
            await self.advance(tick)
        await self.aclose()
        return self.engine.reports

    def counters(self) -> Dict[str, int]:
        return {
            "events_submitted": self.events_submitted,
            "events_pumped": self.events_pumped,
            "events_shed": self.events_shed,
            "tenant_queues": len(self._queues),
        }
