"""The empathy diagnosis engine, packaged as a standard ``Diagnoser``.

Mines empathy events from the snapshot and emits the union of their
localized segments as the hypothesis.  One refinement on top of raw
mining: a link demonstrably alive at T+ (it carries a *working* T+ path)
is subtracted from every event segment — the event cannot have been
caused there.  When subtraction would empty a segment (every lost link is
also on some working path — a pure forwarding change), the original
segment is kept so the event stays attributed rather than silently
vanishing.
"""

from __future__ import annotations

from itertools import chain
from typing import Optional, Set

from repro.core.graph import InferredGraph
from repro.core.linkspace import LinkToken, sort_key
from repro.core.pathset import MeasurementSnapshot
from repro.core.result import DiagnosisResult
from repro.errors import DiagnosisError
from repro.empathy.delta import KIND_FAILED, compute_deltas
from repro.empathy.mining import mine_events

__all__ = ["EmpathyDiagnoser"]


class EmpathyDiagnoser:
    """Empathy-based event miner behind the ``Diagnoser`` protocol.

    Ignores ``control`` and ``lg_lookup`` — empathy needs only the two
    measurement rounds, which is exactly what makes it an independent
    check on the control-plane-assisted variants.
    """

    variant = "empathy"
    poolable = True

    def diagnose(
        self,
        snapshot: MeasurementSnapshot,
        control: object = None,
        lg_lookup: object = None,
    ) -> DiagnosisResult:
        if not snapshot.any_failure():
            raise DiagnosisError(
                "nothing to diagnose: every probed pair is reachable "
                "(the troubleshooter is only invoked on unreachabilities)"
            )
        deltas = compute_deltas(snapshot)
        events = mine_events(deltas)

        alive: Set[LinkToken] = set()
        for pair in snapshot.working_pairs():
            alive.update(snapshot.after.get(pair).links())

        hypothesis: Set[LinkToken] = set()
        excluded: Set[LinkToken] = set()
        refined = 0
        attribution = []
        for event in events:
            segment = event.segment - alive
            if segment:
                if segment != event.segment:
                    refined += 1
                    excluded.update(event.segment & alive)
            else:
                segment = event.segment
            hypothesis.update(segment)
            attribution.append(
                {
                    "pairs": [f"{src}->{dst}" for src, dst in event.pairs],
                    "failures": event.failures,
                    "segment": [str(link) for link in sorted(segment, key=sort_key)],
                    "segment_size": len(segment),
                }
            )

        unexplained = tuple(
            delta.lost
            for delta in deltas
            if delta.kind == KIND_FAILED and not (delta.lost & hypothesis)
        )
        graph = InferredGraph.from_paths(
            chain(snapshot.before.paths(), snapshot.after.paths())
        )
        failed = sum(1 for d in deltas if d.kind == KIND_FAILED)
        return DiagnosisResult(
            algorithm="empathy",
            hypothesis=frozenset(hypothesis),
            graph=graph,
            excluded=frozenset(excluded - hypothesis),
            unexplained_failures=unexplained,
            details={
                "empathy": {
                    "changed_traces": len(deltas),
                    "failed_traces": failed,
                    "rerouted_traces": len(deltas) - failed,
                    "events": len(events),
                    "refined_events": refined,
                },
                "empathy_events": attribution,
            },
        )
