"""Ensemble verdicts: run hitting-set and empathy side by side, compare.

:class:`EnsembleDiagnoser` runs two or more member diagnosers on the same
snapshot and grades their agreement at the metric granularity (undirected
physical links, the same space the paper scores hypotheses in):

* ``agree`` — identical physical hypotheses (including both empty);
* ``partial`` — overlapping but not identical;
* ``conflict`` — disjoint non-empty hypotheses, or exactly one empty.

The ensemble's own hypothesis is the union of the members' (it never
hides a suspect either family found); the verdict and per-member
attribution ride in ``details["ensemble"]``, where the streaming engine
and the degradation report pick them up.  :class:`EnsembleDisagreement`
is the typed counter triple those layers aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from repro.core.diagnoser import NetDiagnoser
from repro.core.linkspace import PhysicalLink
from repro.core.pathset import MeasurementSnapshot
from repro.core.result import DiagnosisResult
from repro.empathy.diagnoser import EmpathyDiagnoser
from repro.errors import DiagnosisError, EmpathyError, ReproError

__all__ = [
    "VERDICT_AGREE",
    "VERDICT_PARTIAL",
    "VERDICT_CONFLICT",
    "VERDICTS",
    "compare_hypotheses",
    "EnsembleDisagreement",
    "EnsembleDiagnoser",
]

VERDICT_AGREE = "agree"
VERDICT_PARTIAL = "partial"
VERDICT_CONFLICT = "conflict"

#: All verdicts, ordered best to worst.
VERDICTS = (VERDICT_AGREE, VERDICT_PARTIAL, VERDICT_CONFLICT)


def compare_hypotheses(
    a: FrozenSet[PhysicalLink], b: FrozenSet[PhysicalLink]
) -> str:
    """Grade two physical hypotheses: agree / partial / conflict."""
    if a == b:
        return VERDICT_AGREE
    if a & b:
        return VERDICT_PARTIAL
    return VERDICT_CONFLICT


@dataclass
class EnsembleDisagreement:
    """Typed agree/partial/conflict tally, mergeable across runs."""

    agree: int = 0
    partial: int = 0
    conflict: int = 0

    def record(self, verdict: str) -> None:
        if verdict not in VERDICTS:
            raise EmpathyError(f"unknown ensemble verdict {verdict!r}")
        setattr(self, verdict, getattr(self, verdict) + 1)

    def merge(self, other: "EnsembleDisagreement") -> None:
        self.agree += other.agree
        self.partial += other.partial
        self.conflict += other.conflict

    @property
    def total(self) -> int:
        return self.agree + self.partial + self.conflict

    def agreement_rate(self) -> float:
        """Fraction of verdicts that at least overlap (agree or partial)."""
        if not self.total:
            return 1.0
        return (self.agree + self.partial) / self.total

    def as_dict(self) -> Dict[str, int]:
        return {
            "agree": self.agree,
            "partial": self.partial,
            "conflict": self.conflict,
        }


class EnsembleDiagnoser:
    """Run several member diagnosers per episode and grade agreement.

    Parameters
    ----------
    members:
        Ordered label -> diagnoser mapping; at least two.  Defaults to
        the paper's best control-plane-free hitting-set variant
        (``nd-edge``) against the empathy engine.
    """

    variant = "ensemble"

    def __init__(self, members: Optional[Mapping[str, object]] = None) -> None:
        if members is None:
            members = {
                "nd-edge": NetDiagnoser("nd-edge"),
                "empathy": EmpathyDiagnoser(),
            }
        self.members = dict(members)
        if len(self.members) < 2:
            raise EmpathyError(
                f"an ensemble needs at least two member diagnosers, got "
                f"{len(self.members)}"
            )

    @property
    def poolable(self) -> bool:
        return all(
            getattr(member, "poolable", True) for member in self.members.values()
        )

    def diagnose(
        self,
        snapshot: MeasurementSnapshot,
        control: object = None,
        lg_lookup: object = None,
    ) -> DiagnosisResult:
        if not snapshot.any_failure():
            raise DiagnosisError(
                "nothing to diagnose: every probed pair is reachable "
                "(the troubleshooter is only invoked on unreachabilities)"
            )
        results: Dict[str, DiagnosisResult] = {}
        errors: Dict[str, str] = {}
        last_error: Optional[ReproError] = None
        for label, member in self.members.items():
            try:
                results[label] = member.diagnose(
                    snapshot, control=control, lg_lookup=lg_lookup
                )
            except ReproError as exc:
                errors[label] = str(exc)
                last_error = exc
        if not results:
            raise DiagnosisError(
                f"every ensemble member failed: {errors}"
            ) from last_error

        labels = list(results)
        pairwise: Dict[str, str] = {}
        worst = VERDICT_AGREE
        for i, a in enumerate(labels):
            for b in labels[i + 1:]:
                verdict = compare_hypotheses(
                    results[a].physical_hypothesis(),
                    results[b].physical_hypothesis(),
                )
                pairwise[f"{a}|{b}"] = verdict
                if VERDICTS.index(verdict) > VERDICTS.index(worst):
                    worst = verdict

        hypothesis = frozenset().union(*(r.hypothesis for r in results.values()))
        excluded = frozenset.intersection(
            *(r.excluded for r in results.values())
        ) - hypothesis
        # Reason over the widest member universe so specificity stays
        # comparable with the member that saw the most links.
        graph = max(results.values(), key=lambda r: len(r.graph)).graph
        first = results[labels[0]]
        return DiagnosisResult(
            algorithm="ensemble",
            hypothesis=hypothesis,
            graph=graph,
            excluded=excluded,
            unexplained_failures=first.unexplained_failures,
            unexplained_reroutes=first.unexplained_reroutes,
            details={
                "ensemble": {
                    "verdict": worst,
                    "pairwise": pairwise,
                    "members": {
                        label: {
                            "algorithm": results[label].algorithm,
                            "hypothesis_size": results[label].hypothesis_size(),
                            "fully_explained": results[label].fully_explained,
                        }
                        for label in labels
                    },
                    "errors": errors,
                },
            },
        )
