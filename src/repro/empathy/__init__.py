"""Traceroute-empathy event mining (arXiv:1412.4074) over snapshots.

The NetDiagnoser family localizes failures with hitting sets over changed
paths; the empathy engine localizes the *same* events from a different
principle — traceroutes that change together, in the same round, losing a
shared path segment, were broken by the same cause.  It needs no
control-plane feed and no Looking Glass, which makes it an independent
oracle: :class:`EnsembleDiagnoser` runs both families per episode and
flags where they disagree.

Pipeline: :func:`compute_deltas` (per-pair T-/T+ diffs) →
:func:`mine_events` (cluster empathic deltas, localize each cluster to
the shared lost segment) → :class:`EmpathyDiagnoser` (standard
:class:`~repro.core.result.DiagnosisResult` with per-event attribution).
"""

from repro.empathy.delta import TraceDelta, compute_deltas
from repro.empathy.diagnoser import EmpathyDiagnoser
from repro.empathy.ensemble import (
    VERDICT_AGREE,
    VERDICT_CONFLICT,
    VERDICT_PARTIAL,
    VERDICTS,
    EnsembleDiagnoser,
    EnsembleDisagreement,
    compare_hypotheses,
)
from repro.empathy.mining import EmpathyEvent, mine_events

__all__ = [
    "TraceDelta",
    "compute_deltas",
    "EmpathyEvent",
    "mine_events",
    "EmpathyDiagnoser",
    "EnsembleDiagnoser",
    "EnsembleDisagreement",
    "compare_hypotheses",
    "VERDICT_AGREE",
    "VERDICT_PARTIAL",
    "VERDICT_CONFLICT",
    "VERDICTS",
]
