"""Cluster empathic trace deltas into events and localize each one.

Empathy relation: two deltas are empathic when their lost sets share an
*identified* link (a UH link belongs to exactly one traceroute by
construction, so it can never witness co-change).  Events are the
transitive closure of the relation — computed with a union-find over the
shared-link index instead of the quadratic pairwise intersection.

Localization: an event's segment is the intersection of its members' lost
sets — the path suffix every member lost, which for a single cause
contains the broken link.  When a cluster chains (A~B and B~C but
A∩B∩C = ∅, i.e. two simultaneous causes glued by a pair crossing both)
the miner peels it greedily: the identified link with the widest support
anchors a sub-event localized to its supporters' intersection, and the
remainder is re-mined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.linkspace import IpLink, sort_key
from repro.core.pathset import Pair
from repro.empathy.delta import KIND_FAILED, TraceDelta

__all__ = ["EmpathyEvent", "mine_events"]


@dataclass(frozen=True)
class EmpathyEvent:
    """One mined event: the pairs that changed together and where.

    ``segment`` is the shared lost path segment the event localizes to;
    ``failures`` counts members whose probe went unreachable (the rest
    rerouted around the cause).
    """

    pairs: Tuple[Pair, ...]
    segment: FrozenSet[IpLink]
    failures: int

    @property
    def support(self) -> int:
        return len(self.pairs)


def _make_event(members: Sequence[TraceDelta], segment: FrozenSet[IpLink]) -> EmpathyEvent:
    return EmpathyEvent(
        pairs=tuple(sorted(d.pair for d in members)),
        segment=segment,
        failures=sum(1 for d in members if d.kind == KIND_FAILED),
    )


def _components(deltas: Sequence[TraceDelta]) -> List[List[TraceDelta]]:
    """Union-find over shared identified lost links."""
    parent = list(range(len(deltas)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    owner: Dict[IpLink, int] = {}
    for index, delta in enumerate(deltas):
        for link in delta.lost:
            if not link.identified:
                continue
            if link in owner:
                a, b = find(owner[link]), find(index)
                if a != b:
                    parent[max(a, b)] = min(a, b)
            else:
                owner[link] = index
    groups: Dict[int, List[TraceDelta]] = {}
    for index, delta in enumerate(deltas):
        groups.setdefault(find(index), []).append(delta)
    # Deterministic order: components sorted by their smallest member pair.
    return [groups[root] for root in sorted(groups, key=lambda r: min(d.pair for d in groups[r]))]


def _localise(members: List[TraceDelta]) -> List[EmpathyEvent]:
    """Localize one connected component, peeling chained clusters."""
    segment = frozenset.intersection(*(d.lost for d in members))
    if segment or len(members) == 1:
        return [_make_event(members, segment or members[0].lost)]
    # Chained component: anchor a sub-event on the widest-support link.
    counts: Dict[IpLink, int] = {}
    for delta in members:
        for link in delta.lost:
            if link.identified:
                counts[link] = counts.get(link, 0) + 1
    anchor = min(counts, key=lambda l: (-counts[l], sort_key(l)))
    chosen = [d for d in members if anchor in d.lost]
    rest = [d for d in members if anchor not in d.lost]
    events = [
        _make_event(chosen, frozenset.intersection(*(d.lost for d in chosen)))
    ]
    for component in _components(rest):
        events.extend(_localise(component))
    return events


def mine_events(deltas: Sequence[TraceDelta]) -> Tuple[EmpathyEvent, ...]:
    """Mine empathy events from per-pair deltas, deterministically ordered."""
    usable = [d for d in deltas if d.lost]
    events: List[EmpathyEvent] = []
    for component in _components(usable):
        events.extend(_localise(component))
    events.sort(key=lambda e: e.pairs)
    return tuple(events)
