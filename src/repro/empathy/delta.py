"""Per-pair trace deltas: what each probe pair lost and gained at T+.

A :class:`TraceDelta` is the empathy engine's unit of evidence — one probe
pair's path change across the event, reduced to the directed links it
*lost* (present at T-, gone at T+) and *gained*.  Two deltas are empathic
when their lost sets share an identified link: they changed in the same
round for a common reason (arXiv:1412.4074's empathy relation, restated
over link sets because our rounds are already aligned).

For a failed pair the T+ trace stops at the blackhole, so set difference
would understate the loss: the suffix of the T- path from the divergence
point onward is what the pair can no longer traverse, and it provably
contains the failed link (the T+ trace follows the old path until it is
cut or rerouted away).  Hence ``lost`` for failed pairs is the *suffix*
from the last common hop, not a bare set difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.core.linkspace import IpLink
from repro.core.pathset import MeasurementSnapshot, Pair, ProbePath, _normalised_hops

__all__ = ["KIND_FAILED", "KIND_REROUTED", "TraceDelta", "compute_deltas"]

KIND_FAILED = "failed"
KIND_REROUTED = "rerouted"


@dataclass(frozen=True)
class TraceDelta:
    """One probe pair's path change across the event window.

    ``divergence_index`` is the length of the common (UH-normalised) hop
    prefix of the T- and T+ traces — the hop index where the pair's
    forwarding first changed.
    """

    pair: Pair
    kind: str
    lost: FrozenSet[IpLink]
    gained: FrozenSet[IpLink]
    divergence_index: int

    @property
    def changed(self) -> bool:
        return bool(self.lost or self.gained)


def _common_prefix(before: ProbePath, after: ProbePath) -> int:
    old = _normalised_hops(before)
    new = _normalised_hops(after)
    shared = 0
    for a, b in zip(old, new):
        if a != b:
            break
        shared += 1
    return shared


def compute_deltas(snapshot: MeasurementSnapshot) -> Tuple[TraceDelta, ...]:
    """Per-pair deltas for every failed or rerouted pair, in pair order."""
    deltas = []
    failed = set(snapshot.failed_pairs())
    rerouted = set(snapshot.rerouted_pairs())
    for pair in snapshot.before.pairs():
        if pair not in failed and pair not in rerouted:
            continue
        before = snapshot.before.get(pair)
        after = snapshot.after.get(pair)
        shared = _common_prefix(before, after)
        before_links = before.links()
        after_links = after.links()
        if pair in failed:
            # Lost suffix: every T- link from the divergence point on.
            # shared >= 1 always (both traces start at the source sensor).
            lost = frozenset(before_links[max(shared - 1, 0):])
            if not lost:
                lost = frozenset(before_links)
            gained = frozenset(after_links) - set(before_links)
            kind = KIND_FAILED
        else:
            lost = frozenset(before_links) - set(after_links)
            gained = frozenset(after_links) - set(before_links)
            kind = KIND_REROUTED
        deltas.append(
            TraceDelta(
                pair=pair,
                kind=kind,
                lost=lost,
                gained=gained,
                divergence_index=shared,
            )
        )
    return tuple(deltas)
