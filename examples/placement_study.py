#!/usr/bin/env python3
"""Sensor placement vs diagnosability (§4 / Figure 5), in miniature.

For each of the paper's four placements, deploys increasing numbers of
sensors on the research-Internet topology, probes the full mesh, and
prints the diagnosability D(G) of the inferred graph along with the
largest class of mutually indistinguishable links — the *reason* a bad
placement diagnoses badly.

Run with::

    python examples/placement_study.py
"""

import random

from repro.core import diagnosability, indistinguishable_classes
from repro.core.graph import InferredGraph
from repro.experiments.figures.fig5_placement import (
    PLACEMENTS,
    _placement_routers,
)
from repro.measurement import deploy_sensors, probe_mesh
from repro.netsim import NetworkState, Simulator
from repro.netsim.gen import research_internet


def main() -> None:
    print(f"{'placement':>15s} {'N':>4s} {'D(G)':>7s} {'links':>6s} "
          f"{'largest confusable class':>25s}")
    for placement in PLACEMENTS:
        for n_sensors in (4, 8, 16, 32):
            topo = research_internet(seed=100)
            rng = random.Random(f"study/{placement}/{n_sensors}")
            routers = _placement_routers(placement, topo, n_sensors, rng)
            sensors = deploy_sensors(topo.net, routers)
            sim = Simulator(
                topo.net,
                {topo.net.asn_of_router(s.router_id) for s in sensors},
            )
            store = probe_mesh(sim, sensors, NetworkState.nominal())
            graph = InferredGraph.from_paths(store.paths())
            classes = indistinguishable_classes(graph)
            print(
                f"{placement:>15s} {n_sensors:>4d} "
                f"{diagnosability(graph):>7.3f} {len(graph):>6d} "
                f"{len(classes[0]):>25d}"
            )
        print()
    print("Reading: D(G)=1 means every single-link failure is precisely")
    print("identifiable; a large confusable class means the same set of")
    print("probes crosses many links, so their failures look identical.")


if __name__ == "__main__":
    main()
