#!/usr/bin/env python3
"""Diagnosing a BGP export-filter misconfiguration (§3.1 of the paper).

Replays the paper's running example: router y1 in AS Y is misconfigured
and stops announcing the route towards AS C to its peer x2 in AS X.  The
physical link x2-y1 keeps carrying traffic towards AS B — a *partial*
failure that plain Boolean tomography cannot express.  The script shows

* the reachability matrix the sensors observe (s1->s3 dies, s1->s2 lives),
* why Tomo exonerates the guilty link,
* how the logical-link expansion lets ND-edge pin x2->y1 for the routes
  learned from C.

Run with::

    python examples/misconfiguration_diagnosis.py
"""

from repro.core import NetDiagnoser, logicalize
from repro.measurement import deploy_sensors, take_snapshot
from repro.netsim import (
    ExportFilter,
    MisconfigurationEvent,
    NetworkState,
    Simulator,
    figure2_network,
)


def main() -> None:
    fig = figure2_network()
    net = fig.net
    sim = Simulator(net, [fig.asn("A"), fig.asn("B"), fig.asn("C")])
    sensors = deploy_sensors(
        net, [fig.sensor_routers[name] for name in ("s1", "s2", "s3")]
    )

    # Misconfigure y1's outbound filter towards x2: the route to AS C's
    # prefix silently disappears from that one session.
    session = fig.link_between("x2", "y1")
    prefix_c = net.autonomous_system(fig.asn("C")).prefix
    event = MisconfigurationEvent(
        ExportFilter(
            link_id=session.lid,
            at_router=fig.router("y1").rid,
            prefixes=frozenset({prefix_c}),
        )
    )
    before = NetworkState.nominal()
    after = sim.apply(event)
    print("injected:", event.describe(net))

    snapshot = take_snapshot(sim, sensors, before, after)
    print("\nreachability after the event:")
    for pair in snapshot.before.pairs():
        status = "up  " if pair in set(snapshot.working_pairs()) else "DOWN"
        print(f"  {pair[0]} -> {pair[1]}   {status}")

    # The broken path, at both granularities.
    failed_pair = snapshot.failed_pairs()[0]
    broken = snapshot.before.get(failed_pair)
    print("\nthe failed path's links, physical vs logical:")
    for physical, logical in zip(broken.links(), logicalize(broken, snapshot.asn_of)):
        marker = "  <-- per-neighbour split" if str(physical) != str(logical) else ""
        print(f"  {str(physical):46s} {logical}{marker}")

    tomo = NetDiagnoser("tomo").diagnose(snapshot)
    print(f"\nTomo hypothesis: {sorted(map(str, tomo.hypothesis)) or '(empty)'}")
    print("  -> the physical link x2-y1 carries the working path s1->s2,")
    print("     so Tomo exonerates it: sensitivity is zero (§5.1).")

    nd = NetDiagnoser("nd-edge").diagnose(snapshot)
    print(f"\nND-edge hypothesis: {sorted(map(str, nd.hypothesis))}")
    print("  -> exactly the logical link x2->y1 tagged with AS C: the")
    print("     misconfigured (link, neighbour) pair, as in §3.1.")


if __name__ == "__main__":
    main()
