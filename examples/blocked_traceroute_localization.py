#!/usr/bin/env python3
"""AS-level localisation when ASes block traceroute (§3.4 / Figure 11).

Generates the 165-AS research-Internet topology, deploys ten sensors at
random stub ASes, makes 40 % of the covered transit ASes block traceroute,
fails an intradomain link, and compares

* **ND-bgpigp** (ignoring unidentified links) — blind whenever the
  failure hides inside a blocked AS, and
* **ND-LG** — which maps the stars to candidate ASes via Looking Glasses
  and clusters unidentified links that may be the same hidden link.

Run with::

    python examples/blocked_traceroute_localization.py [seed]
"""

import random
import sys

from repro.core import NetDiagnoser, as_projection, rank_suspect_ases
from repro.experiments.runner import (
    choose_blocked_ases,
    ground_truth_ases,
    make_session,
)
from repro.measurement import (
    collect_control_plane,
    make_lg_lookup,
    random_stub_placement,
    take_snapshot,
)
from repro.netsim import LookingGlassService
from repro.netsim.gen import research_internet


def main(seed: int = 7) -> None:
    rng = random.Random(seed)
    topo = research_internet(seed=seed)
    session = make_session(
        topo,
        random_stub_placement(topo, 10, rng),
        rng,
        intra_failures_only=True,  # failures attributable to a single AS
    )
    asx = topo.core_asns[0]
    blocked = choose_blocked_ases(
        session, 0.4, rng, protected=frozenset({asx})
    )
    names = {a.asn: a.name for a in session.net.ases()}
    print("blocked ASes:", ", ".join(names[a] for a in sorted(blocked)))

    # Find a failure hiding inside a blocked AS (the interesting case).
    for _attempt in range(60):
        scenario = session.sampler.sample("link-1")
        truth_ases = ground_truth_ases(session.net, scenario.event)
        if truth_ases & blocked:
            break
    else:
        print("no blocked-AS failure sampled; try another seed")
        return
    print("injected:", scenario.event.describe(session.net))
    print("failed AS:", ", ".join(names[a] for a in sorted(truth_ases)))

    snapshot = take_snapshot(
        session.sim,
        session.sensors,
        session.base_state,
        scenario.after_state,
        blocked_ases=blocked,
    )
    control = collect_control_plane(
        session.sim, asx, session.base_state, scenario.after_state
    )
    lg = LookingGlassService.everywhere(session.net)
    lookup = make_lg_lookup(
        session.sim, lg, session.base_state, scenario.after_state, asx=asx
    )

    blind = NetDiagnoser("nd-bgpigp", ignore_unidentified=True).diagnose(
        snapshot, control=control
    )
    sighted = NetDiagnoser("nd-lg").diagnose(
        snapshot, control=control, lg_lookup=lookup
    )

    for label, result in (("nd-bgpigp (ignores UHs)", blind), ("nd-lg", sighted)):
        ases = as_projection(
            result.hypothesis,
            snapshot.asn_of,
            result.details.get("uh_tags", {}),
        )
        found = "FOUND" if truth_ases & ases else "missed"
        print(f"\n{label}: blames ASes "
              f"{sorted(names.get(a, a) for a in ases) or '(none)'} -> {found}")
    tags = sighted.details["uh_tags"]
    ambiguous = sum(1 for tag in tags.values() if len(tag) > 1)
    print(f"\nND-LG mapped {len(tags)} unidentified hops "
          f"({ambiguous} with ambiguous multi-AS tags), "
          f"formed {len(sighted.details['clusters'])} link clusters")

    print("\nranked suspects (who to call first):")
    for suspect in rank_suspect_ases(sighted, snapshot.asn_of, names=names)[:5]:
        print(f"  {suspect}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
