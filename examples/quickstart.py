#!/usr/bin/env python3
"""Quickstart: diagnose a link failure in the paper's Figure 2 network.

Builds the five-AS example internetwork from the paper (ASes A, X, Y, B,
C with sensors s1/s2/s3), fails the intradomain link b1-b2, runs the
full measure-and-diagnose loop with every NetDiagnoser variant, and
prints what each one blames.

Run with::

    python examples/quickstart.py
"""

from repro.core import NetDiagnoser
from repro.measurement import collect_control_plane, deploy_sensors, take_snapshot
from repro.netsim import LinkFailureEvent, NetworkState, Simulator, figure2_network


def main() -> None:
    # 1. Build the topology and the simulator (converging the sensor ASes).
    fig = figure2_network()
    net = fig.net
    sim = Simulator(net, [fig.asn("A"), fig.asn("B"), fig.asn("C")])

    # 2. Deploy the troubleshooting sensors at their Figure 2 locations.
    sensors = deploy_sensors(
        net, [fig.sensor_routers[name] for name in ("s1", "s2", "s3")]
    )
    print("sensors:")
    for sensor in sensors:
        gw = net.router(sensor.router_id)
        print(f"  {sensor.name} at {sensor.address} behind {gw.name}")

    # 3. Break the link b1-b2 inside AS B (the paper's §2.2 example).
    before = NetworkState.nominal()
    failed_link = fig.link_between("b1", "b2")
    after = sim.apply(LinkFailureEvent((failed_link.lid,)))
    print(f"\ninjected: link {net.router(failed_link.a).name}-"
          f"{net.router(failed_link.b).name} fails")

    # 4. Measure: full-mesh traceroutes before (T-) and after (T+).
    snapshot = take_snapshot(sim, sensors, before, after)
    print(f"unreachable pairs: {len(snapshot.failed_pairs())} "
          f"of {len(snapshot.before)}")

    # 5. Diagnose with each variant.  AS-X is the provider AS X: its
    #    control-plane feed powers ND-bgpigp.
    control = collect_control_plane(sim, fig.asn("X"), before, after)
    for variant in ("tomo", "nd-edge", "nd-bgpigp"):
        diagnoser = NetDiagnoser(variant)
        result = diagnoser.diagnose(snapshot, control=control)
        blamed = sorted(str(link) for link in result.physical_hypothesis())
        print(f"\n{variant}: hypothesis ({len(blamed)} physical links)")
        for link in blamed:
            print(f"  {link}")
        print(f"  every broken path explained: {result.fully_explained}")

    truth = f"{net.router(failed_link.a).address}--{net.router(failed_link.b).address}"
    print(f"\nground truth: {truth}")


if __name__ == "__main__":
    main()
