#!/usr/bin/env python3
"""A full ISP NOC troubleshooting session (the paper's deployment story).

AS-X is a core provider (Abilene) operating the troubleshooter at its
NOC.  A multi-failure event strikes the research Internet: one reroutable
link failure plus one non-recoverable one.  The script walks through the
troubleshooter's actual workflow:

1. the sensor overlay reports the reachability matrix,
2. AS-X correlates it with its own IGP messages and BGP withdrawal log,
3. ND-bgpigp emits a ranked hypothesis the operator can act on.

Run with::

    python examples/isp_noc_workflow.py [seed]
"""

import random
import sys

from repro.core import NetDiagnoser
from repro.experiments.runner import ground_truth_links, make_session
from repro.measurement import (
    collect_control_plane,
    random_stub_placement,
    take_snapshot,
)
from repro.netsim.gen import research_internet


def main(seed: int = 3) -> None:
    rng = random.Random(seed)
    topo = research_internet(seed=seed)
    session = make_session(topo, random_stub_placement(topo, 10, rng), rng)
    net = session.net
    asx = topo.core_asns[0]
    print(f"AS-X: {net.autonomous_system(asx).name} (ASN {asx})")

    scenario = session.sampler.sample("link-2")
    print("event (hidden from the troubleshooter):",
          scenario.event.describe(net))

    snapshot = take_snapshot(
        session.sim, session.sensors, session.base_state, scenario.after_state
    )
    print(f"\n[overlay] {len(snapshot.failed_pairs())} sensor pairs "
          f"unreachable, {len(snapshot.rerouted_pairs())} rerouted, "
          f"{len(snapshot.working_pairs())} still fine")

    control = collect_control_plane(
        session.sim, asx, session.base_state, scenario.after_state
    )
    print(f"[control] IGP link-down messages: {len(control.igp_link_down)}")
    for event in control.igp_link_down:
        print(f"          {event.address_a} -- {event.address_b}")
    print(f"[control] BGP withdrawals received: {len(control.withdrawals)}")
    for withdrawal in control.withdrawals[:5]:
        print(f"          {withdrawal.prefix} from AS{withdrawal.from_asn} "
              f"at {withdrawal.at_address}")

    result = NetDiagnoser("nd-bgpigp").diagnose(snapshot, control=control)
    truth = ground_truth_links(net, scenario.event)
    print(f"\n[diagnosis] hypothesis ({len(result.physical_hypothesis())} "
          f"physical links):")
    for link in sorted(map(str, result.physical_hypothesis())):
        verdict = "TRUE FAILURE" if any(
            str(t) == link for t in truth
        ) else "false positive (check anyway)"
        print(f"  {link:48s} {verdict}")
    print(f"\n[diagnosis] evidence: {result.details['failure_sets']} failure "
          f"sets, {result.details['reroute_sets']} reroute sets, "
          f"{result.details['igp_preseeded']} IGP-pinned links, "
          f"{result.details['withdrawal_exonerated']} tokens exonerated by "
          f"withdrawals")
    missed = truth - result.physical_hypothesis()
    print(f"[verdict] detected {len(truth & result.physical_hypothesis())}"
          f"/{len(truth)} failed links"
          + (f"; missed {sorted(map(str, missed))}" if missed else ""))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 3)
