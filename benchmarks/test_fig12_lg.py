"""Benchmark regenerating Figure 12: the effect of Looking Glass servers."""

from repro.experiments.figures import fig12_lg

from conftest import run_once


def test_fig12_lg(benchmark, bench_config, record_figure):
    result = run_once(benchmark, lambda: fig12_lg.run(bench_config))
    record_figure(result)
    for blocked in fig12_lg.DEFAULT_BLOCKED_FRACTIONS:
        curve = dict(result.series_by_name(f"nd-lg/f_b={blocked}").points)
        flat = dict(result.series_by_name(f"nd-bgpigp/f_b={blocked}").points)
        # Full LG coverage beats no-LG baseline...
        assert curve[1.0] >= max(flat.values()) - 1e-9
        # ...and more LGs never hurt much (monotone-ish trend).
        xs = sorted(curve)
        assert curve[xs[-1]] >= curve[xs[0]] - 0.1
