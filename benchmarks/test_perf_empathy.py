"""Empathy-engine throughput bench: diagnoses/sec per topology tier.

The crossval experiment shows empathy matching hitting-set recall on
link failures at a fraction of the cost; this bench pins the cost side
down.  Each tier runs the same deterministic failure scenarios through
``nd-edge``, ``empathy`` and the two-member ensemble, recording
per-engine diagnosis throughput and the tier's verdict tally into
``BENCH_empathy.json`` (repo root + ``results/``, the copies CI uploads
and diffs across PRs).
"""

import json
import random
import time

from repro.core.diagnoser import NetDiagnoser
from repro.empathy import EmpathyDiagnoser, EnsembleDiagnoser, EnsembleDisagreement
from repro.experiments.runner import make_session
from repro.measurement.collector import take_snapshot
from repro.measurement.sensors import random_stub_placement
from repro.netsim.gen.internet import research_internet
from repro.netsim.gen.powerlaw import powerlaw_internet
from repro.perf import peak_rss_mb, write_bench_artifact

from conftest import REPO_ROOT, RESULTS_DIR

SCHEMA = "bench-empathy-v1"
BENCH_PATH = RESULTS_DIR / "BENCH_empathy.json"


def _failure_lids(topo, session, index):
    """Deterministic scenario ``index``: cut one sensor stub's uplinks."""
    net = topo.net
    sensor = session.sensors[index % len(session.sensors)]
    stub_asn = net.asn_of_router(sensor.router_id)
    return [link.lid for link in net.inter_links_of_as(stub_asn)]


def _measure_tier(label, build, n_sensors, n_diagnoses):
    topo = build()
    rng = random.Random(f"perf-empathy/{label}")
    session = make_session(
        topo, random_stub_placement(topo, n_sensors, rng), rng
    )
    engines = {
        "nd-edge": NetDiagnoser("nd-edge"),
        "empathy": EmpathyDiagnoser(),
        "ensemble": EnsembleDiagnoser(),
    }
    snapshots = []
    for index in range(n_diagnoses):
        after = session.base_state.with_failed_links(
            _failure_lids(topo, session, index)
        )
        snapshots.append(
            take_snapshot(
                session.sim, session.sensors, session.base_state, after
            )
        )
    verdicts = EnsembleDisagreement()
    throughput = {}
    for name, engine in engines.items():
        started = time.perf_counter()
        for snapshot in snapshots:
            result = engine.diagnose(snapshot)
            assert result.hypothesis, f"degenerate diagnosis at tier {label}"
            if name == "ensemble":
                verdicts.record(result.details["ensemble"]["verdict"])
        elapsed = time.perf_counter() - started
        throughput[f"{name.replace('-', '_')}_dps"] = round(
            n_diagnoses / elapsed, 4
        )
    return {
        "label": label,
        "n_ases": topo.net.num_ases,
        "n_links": topo.net.num_links,
        "n_sensors": n_sensors,
        "diagnoses": n_diagnoses,
        "verdicts": verdicts.as_dict(),
        "agreement_rate": round(verdicts.agreement_rate(), 4),
        "peak_rss_mb": round(peak_rss_mb(), 1),
        **throughput,
    }


def test_perf_empathy(benchmark):
    def run():
        tiers = []
        for label, build, n_sensors, n_diagnoses in (
            (
                "research-165",
                lambda: research_internet(n_tier2=22, n_stub=140, seed=0),
                10,
                4,
            ),
            ("powerlaw-1000", lambda: powerlaw_internet(1000, seed=0), 12, 2),
            ("powerlaw-5000", lambda: powerlaw_internet(5000, seed=0), 64, 1),
        ):
            tiers.append(_measure_tier(label, build, n_sensors, n_diagnoses))

        def merge(data):
            data.setdefault("tiers", {})
            for row in tiers:
                data["tiers"][row["label"]] = row

        return write_bench_artifact("empathy", SCHEMA, merge, REPO_ROOT)

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(json.dumps(data, indent=2, sort_keys=True))

    assert data["schema"] == SCHEMA
    assert len(data["tiers"]) >= 3
    for row in data["tiers"].values():
        assert row["empathy_dps"] > 0
        assert row["nd_edge_dps"] > 0
        assert row["ensemble_dps"] > 0
        # The two families must at least overlap on the bench scenarios.
        assert row["agreement_rate"] >= 0.8
