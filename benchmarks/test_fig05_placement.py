"""Benchmark regenerating Figure 5: sensor placement vs diagnosability."""

from repro.experiments.figures import fig5_placement

from conftest import run_once


def test_fig05_placement(benchmark, bench_config, record_figure):
    result = run_once(
        benchmark, lambda: fig5_placement.run(bench_config)
    )
    record_figure(result)
    last = {s.name: s.points[-1][1] for s in result.series}
    # Paper shape: same-AS best; split improves distant; random worst-ish.
    assert last["same-as"] >= last["distant-as"]
    assert last["same-as"] >= last["random"]
    assert last["distant-split"] >= last["distant-as"] - 0.02
    # D(G) always within [0, 1].
    for series in result.series:
        assert all(0.0 <= y <= 1.0 for _x, y in series.points)
