"""Benchmark regenerating Figure 11: the effect of blocked traceroutes."""

from repro.experiments.figures import fig11_blocked

from conftest import run_once


def test_fig11_blocked(benchmark, bench_config, record_figure):
    result = run_once(benchmark, lambda: fig11_blocked.run(bench_config))
    record_figure(result)
    lg = dict(result.series_by_name("nd-lg/as-sensitivity").points)
    plain = dict(result.series_by_name("nd-bgpigp/as-sensitivity").points)
    # ND-LG stays high across the f_b range...
    assert min(lg.values()) >= 0.6
    # ...while ignoring unidentified links decays roughly like 1 - f_b.
    assert plain[0.8] <= 0.55
    assert plain[0.8] <= plain[0.0]
    assert lg[0.8] >= plain[0.8] + 0.2
