"""Benchmark regenerating Figure 9: diagnosability vs specificity."""

from repro.experiments.figures import fig9_diag_vs_spec

from conftest import run_once


def test_fig09_diag_vs_spec(benchmark, bench_config, record_figure):
    result = run_once(benchmark, lambda: fig9_diag_vs_spec.run(bench_config))
    record_figure(result)
    # Specificity stays high across the whole diagnosability range.
    assert result.summaries["specificity"]["p10"] >= 0.75
    # Positive relation: the binned trend ends at least where it starts.
    trend = result.series_by_name("trend").points
    assert trend[-1][1] >= trend[0][1] - 0.05
