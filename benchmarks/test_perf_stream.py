"""Throughput and latency benchmark for the streaming diagnosis engine.

Replays a multi-episode event log through :class:`StreamEngine` on the
paper's research-Internet topology and records the numbers the ISSUE
asks the stream lane to track: sustained events/sec through
ingest→window→detect, and the p50/p99 episode-diagnosis latency in
logical ticks (how long an episode transition waited on the bounded
queue before its diagnosis ran).

Run with the slow lane::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_stream.py -m slow -s

Scale knobs: ``REPRO_BENCH_STREAM_EPISODES`` (default 4) and
``REPRO_BENCH_SENSORS`` (default 10).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.report import render_stream_report
from repro.experiments.stats import percentile
from repro.perf import write_bench_artifact
from repro.stream import ReplayConfig, make_replay_setup, run_stream_replay

from conftest import REPO_ROOT

TOPO_SEED = 100
SEED = 0

SCHEMA = "bench-stream-v1"


@pytest.mark.slow
def test_stream_throughput_and_episode_latency():
    episodes = int(os.environ.get("REPRO_BENCH_STREAM_EPISODES", "4"))
    n_sensors = int(os.environ.get("REPRO_BENCH_SENSORS", "10"))
    setup = make_replay_setup(
        seed=SEED,
        topo_seed=TOPO_SEED,
        n_tier2=22,
        n_stub=140,
        n_sensors=n_sensors,
    )
    config = ReplayConfig(
        kind="link-1",
        episodes=episodes,
        incident_rounds=2,
        recovery_rounds=2,
        fault_rate=0.1,
        seed=SEED,
    )
    result = run_stream_replay(setup, config, policy="quarantine")

    assert result.events_total > 0
    assert result.reports, "the replay must diagnose at least one episode"
    # One open and one close per injected episode at minimum.
    opens = [r for r in result.reports if r.trigger == "open"]
    assert len(opens) == episodes

    events_per_second = result.events_total / max(result.wall_seconds, 1e-9)
    p50 = percentile(result.latencies, 0.50)
    p99 = percentile(result.latencies, 0.99)

    def merge(data):
        data["replay"] = {
            "episodes": episodes,
            "n_sensors": n_sensors,
            "events_total": result.events_total,
            "wall_seconds": round(result.wall_seconds, 4),
            "events_per_second": round(events_per_second, 1),
            "latency_ticks_p50": p50,
            "latency_ticks_p99": p99,
            "reports": len(result.reports),
        }

    write_bench_artifact("stream", SCHEMA, merge, REPO_ROOT)

    print()
    print(render_stream_report(result))
    print(
        f"\n(22, 140) stream, {episodes} episodes, {n_sensors} sensors: "
        f"{result.events_total} events in {result.wall_seconds:.2f}s "
        f"-> {events_per_second:.0f} events/s, episode latency "
        f"p50={p50} p99={p99} ticks"
    )

    # Bounded latency: with an uncontended queue every transition is
    # diagnosed the tick it was scheduled (the grace tick at end of
    # stream adds at most one).
    assert p99 <= 1
