"""Flight-recorder benchmark: sustained monitoring throughput and the
quality of what it records.

Runs the ``mixed-ops`` scenario (every trouble mode at once) for a long
horizon and records the numbers the ISSUE asks the monitor lane to
track: sustained events/sec over the full observe→record→score
pipeline, detection latency against the seeded outage schedule, the
false-alarm rate the hysteresis holds under flapping noise, and the
blocked-vs-failed classifier's precision/recall on the seeded ground
truth.

Run with the slow lane::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_monitor.py -m slow -s

Scale knobs: ``REPRO_BENCH_MONITOR_TICKS`` (default 10000) and
``REPRO_BENCH_MONITOR_SHARDS`` (default 1).
"""

from __future__ import annotations

import os

import pytest

from repro.monitor import (
    make_monitor_setup,
    render_monitor_report,
    run_monitor,
    scenario,
)
from repro.perf import write_bench_artifact

from conftest import REPO_ROOT

TOPO_SEED = 100
SEED = 0

SCHEMA = "bench-monitor-v1"


@pytest.mark.slow
def test_monitor_throughput_detection_and_classification():
    ticks = int(os.environ.get("REPRO_BENCH_MONITOR_TICKS", "10000"))
    shards = int(os.environ.get("REPRO_BENCH_MONITOR_SHARDS", "1"))
    setup = make_monitor_setup(seed=SEED, topo_seed=TOPO_SEED)
    result = run_monitor(
        setup,
        scenario("mixed-ops", ticks),
        SEED,
        policy="quarantine",
        shards=shards,
    )

    assert result.events_total >= ticks  # >= one event per tick sustained
    assert result.recorder.intervals, "mixed-ops must record bad intervals"
    detection = result.detection
    classifier = result.classifier
    events_per_second = result.events_per_second

    def merge(data):
        data["monitor"] = {
            "scenario": "mixed-ops",
            "ticks": ticks,
            "shards": shards,
            "pairs_monitored": result.pairs_monitored,
            "events_total": result.events_total,
            "events_thinned": result.observations_skipped,
            "wall_seconds": round(result.wall_seconds, 4),
            "events_per_second": round(events_per_second, 1),
            "intervals_total": len(result.recorder.intervals),
            "outages_scored": detection.outages_total,
            "detected_fraction": round(detection.detected_fraction, 4),
            "detection_latency_mean": round(detection.latency_mean, 2),
            "detection_latency_p99": detection.latency_p99,
            "false_alarm_rate": round(detection.false_alarm_rate, 4),
            "classifier_scored": classifier.scored,
            "blocked_precision": round(classifier.precision_blocked, 4),
            "blocked_recall": round(classifier.recall_blocked, 4),
            "failed_precision": round(classifier.precision_failed, 4),
            "failed_recall": round(classifier.recall_failed, 4),
        }

    write_bench_artifact("monitor", SCHEMA, merge, REPO_ROOT)

    print()
    print(render_monitor_report(result))
    print(
        f"\nmixed-ops, {ticks} ticks, {result.pairs_monitored} pairs: "
        f"{result.events_total} events in {result.wall_seconds:.2f}s "
        f"-> {events_per_second:.0f} events/s; detection latency "
        f"mean={detection.latency_mean:.1f} p99={detection.latency_p99} "
        f"ticks, false alarms {detection.false_alarm_rate:.3f}, classifier "
        f"P/R blocked {classifier.precision_blocked:.3f}/"
        f"{classifier.recall_blocked:.3f} failed "
        f"{classifier.precision_failed:.3f}/{classifier.recall_failed:.3f}"
    )

    # The ISSUE's quality floors: near-total detection of confirmable
    # outages, hysteresis holding false alarms down under flapping, and
    # the blocked-vs-failed classifier at >= 0.9 precision AND recall.
    assert detection.detected_fraction >= 0.9
    assert detection.false_alarm_rate <= 0.1
    assert classifier.precision_blocked >= 0.9
    assert classifier.recall_blocked >= 0.9
    assert classifier.precision_failed >= 0.9
    assert classifier.recall_failed >= 0.9
