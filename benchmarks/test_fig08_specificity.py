"""Benchmark regenerating Figure 8: specificity of ND-edge."""

from repro.experiments.figures import fig8_specificity

from conftest import run_once


def test_fig08_specificity(benchmark, bench_config, record_figure):
    result = run_once(benchmark, lambda: fig8_specificity.run(bench_config))
    record_figure(result)
    s = result.summaries
    # Specificity > 0.9 for single link failures, misconfigs even better.
    assert s["link-1"]["mean"] >= 0.9
    assert s["misconfig"]["mean"] >= s["link-1"]["mean"]
    # Hypothesis sets stay small (paper: up to ~12 links).
    assert s["link-1/|H|"]["p90"] <= 15
