"""Resilience benchmark: what chaos costs, and what recovery buys back.

The tentpole question of the supervision work: when the diagnosis
service itself crashes, stalls and chokes on poison inputs, how fast
does it heal and how much coverage does the healing cost?  Two
measurements land in ``BENCH_resilience.json`` (repo root +
``results/``):

* **fabric**: the seeded synthetic mesh of ``test_perf_shards.py``
  streamed through the :class:`~repro.stream.SupervisedStreamEngine`
  twice — undisturbed, then under a seeded chaos plan — recording the
  throughput dip, ticks-to-recover, episodes delayed vs the undisturbed
  run, and the exact-accounting identity
  ``offered == admitted + shed + rejected + dead-lettered`` (asserted,
  not just recorded);
* **recovery**: the golden replay scenario under full chaos (crashes,
  stalls, slow shards, worker poison), recording breaker trips,
  poisoned/short-circuited diagnoses and dead letters.

Scale knobs: ``REPRO_BENCH_RESILIENCE_EVENTS`` (default 200_000) and
``REPRO_BENCH_SHARDS`` (default 4).

Run directly (the chaos-smoke CI lane does)::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_resilience.py -q \
        --benchmark-disable
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments.stats import ratio
from repro.faults import FaultConfig, FaultPlan
from repro.perf import peak_rss_mb, write_bench_artifact
from repro.stream import (
    ReachabilityEvent,
    ReplayConfig,
    SupervisedStreamEngine,
    SupervisionConfig,
    TenantConfig,
    make_replay_setup,
    run_stream_replay,
    source_tenant_of,
)

from conftest import REPO_ROOT

SCHEMA = "bench-resilience-v1"

N_EVENTS = int(os.environ.get("REPRO_BENCH_RESILIENCE_EVENTS", "200000"))
N_SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "4"))

#: Synthetic mesh shape (matches test_perf_shards.py).
N_SOURCES = 40
N_DESTS = 50
WAVE_PERIOD = 12
WAVE_TICKS = 5
WAVE_WIDTH = 6

#: Per-(shard, tick) chaos rate for the fabric run, and the supervision
#: tuning under test: tight checkpoints, one-tick restarts, a buffer
#: deliberately smaller than a dark shard's per-tick load so overflow
#: dead-lettering is exercised (and accounted) too.
CHAOS_RATE = 0.02
SUPERVISION = SupervisionConfig(
    checkpoint_every=2,
    restart_after=1,
    buffer_limit=256,
)


def _no_asn(_address: str):
    return None


def _pairs():
    sources = [f"10.0.{i // 250}.{i % 250 + 1}" for i in range(N_SOURCES)]
    dests = [f"198.51.{i}.1" for i in range(N_DESTS)]
    return [(src, dst) for src in sources for dst in dests]


def _dst_failing(dst: str, tick: int) -> bool:
    phase = tick % WAVE_PERIOD
    if phase >= WAVE_TICKS:
        return False
    wave = tick // WAVE_PERIOD
    prefix_index = int(dst.split(".")[2])
    return (prefix_index + wave) % (N_DESTS // WAVE_WIDTH) == 0


def _make_engine(plan) -> SupervisedStreamEngine:
    tenants = tuple(
        TenantConfig(f"tenant-{i}", rate=max(1, (N_SOURCES * N_DESTS) // 8))
        for i in range(4)
    )
    return SupervisedStreamEngine(
        asn_of=_no_asn,
        diagnosers={},
        shards=N_SHARDS,
        window_width=4,
        open_after=2,
        close_after=2,
        max_pending=16,
        overflow_limit=1024,
        tenants=tenants,
        tenant_of=source_tenant_of(tenants),
        plan=plan,
        supervision=SUPERVISION,
    )


def _drive(engine: SupervisedStreamEngine, n_events: int):
    pairs = _pairs()
    ticks = max(1, n_events // len(pairs))
    seq = 0
    started = time.perf_counter()
    for tick in range(1, ticks + 1):
        for src, dst in pairs:
            engine.offer(
                ReachabilityEvent(
                    tick=tick,
                    seq=seq,
                    src=src,
                    dst=dst,
                    reached=not _dst_failing(dst, tick),
                )
            )
            seq += 1
        engine.advance(tick)
        engine.drain(tick)
    engine.advance(ticks + 1)
    engine.flush(ticks + 1)
    engine.close()
    wall = time.perf_counter() - started
    return seq, ticks, wall


def _assert_exact_accounting(engine: SupervisedStreamEngine) -> dict:
    """The acceptance identity: every offered event lands in exactly one
    bucket.  Chaos may delay or park events — never lose one silently."""
    counters = engine.counters()
    quarantined = engine.ingest_counters()["events_quarantined"]
    accounted = (
        counters["events_admitted"]
        + counters["admission_shed"]
        + counters["admission_rejected_unknown"]
        + quarantined
        + counters["events_dead_lettered"]
    )
    assert counters["events_offered"] == accounted, (
        f"unaccounted events: {counters['events_offered']} offered != "
        f"{accounted} accounted"
    )
    return {
        "offered": counters["events_offered"],
        "admitted": counters["events_admitted"],
        "shed": counters["admission_shed"],
        "rejected_unknown": counters["admission_rejected_unknown"],
        "quarantined": quarantined,
        "dead_lettered": counters["events_dead_lettered"],
    }


def _measure_fabric():
    baseline_engine = _make_engine(plan=None)
    events, ticks, base_wall = _drive(baseline_engine, N_EVENTS)
    baseline_eps = ratio(events, base_wall)
    baseline_episodes = baseline_engine.detector_counters()["episodes_total"]

    plan = FaultPlan("bench/resilience", FaultConfig.chaos(CHAOS_RATE))
    chaos_engine = _make_engine(plan=plan)
    events, ticks, chaos_wall = _drive(chaos_engine, N_EVENTS)
    chaos_eps = ratio(events, chaos_wall)
    stats = chaos_engine.supervision_stats()
    counters = stats["counters"]
    recoveries = stats["ticks_to_recover"]
    accounting = _assert_exact_accounting(chaos_engine)

    return {
        "events": events,
        "ticks": ticks,
        "shards": N_SHARDS,
        "chaos_rate": CHAOS_RATE,
        "baseline_events_per_second": round(baseline_eps, 1),
        "chaos_events_per_second": round(chaos_eps, 1),
        "throughput_dip": round(1.0 - ratio(chaos_eps, baseline_eps), 4),
        "shard_crashes": counters["shard_crashes"],
        "shard_stalls": counters["shard_stalls"],
        "recoveries": counters["recoveries"],
        "ticks_to_recover_mean": round(
            ratio(sum(recoveries), len(recoveries)), 2
        ),
        "ticks_to_recover_max": max(recoveries) if recoveries else 0,
        "ticks_dark": counters["ticks_dark"],
        "checkpoints_saved": counters["checkpoints_saved"],
        "events_buffered": counters["events_buffered"],
        "episodes_baseline": baseline_episodes,
        "episodes_chaos": chaos_engine.detector_counters()["episodes_total"],
        "episodes_delayed": counters["episodes_delayed"],
        "pairs_uncovered": counters["pairs_uncovered"],
        "accounting": accounting,
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }


def _measure_recovery():
    """The golden replay scenario under full chaos, diagnosers included."""
    config = ReplayConfig(
        kind="link-1",
        episodes=2,
        incident_rounds=2,
        recovery_rounds=2,
        seed=7,
        chaos_rate=0.15,
    )
    started = time.perf_counter()
    result = run_stream_replay(make_replay_setup(seed=7, n_sensors=6), config)
    wall = time.perf_counter() - started
    stats = result.supervision
    counters = stats["counters"]
    breakers = stats["breakers"]
    return {
        "chaos_rate": config.chaos_rate,
        "wall_seconds": round(wall, 3),
        "reports": len(result.reports),
        "shard_crashes": counters["shard_crashes"],
        "shard_stalls": counters["shard_stalls"],
        "recoveries": counters["recoveries"],
        "ticks_to_recover": stats["ticks_to_recover"],
        "episodes_delayed": counters["episodes_delayed"],
        "diagnoses_poisoned": stats["diagnoses_poisoned"],
        "diagnoses_short_circuited": stats["diagnoses_short_circuited"],
        "breaker_opened": sum(b["times_opened"] for b in breakers.values()),
        "breaker_reclosed": sum(
            b["times_reclosed"] for b in breakers.values()
        ),
        "transitions_dead_lettered": stats["transitions_dead_lettered"],
        "dead_letters": stats["dead_letters"],
    }


def test_perf_resilience():
    fabric = _measure_fabric()

    # A resilience bench where nothing failed measured nothing.
    assert fabric["shard_crashes"] + fabric["shard_stalls"] > 0
    assert fabric["recoveries"] == (
        fabric["shard_crashes"] + fabric["shard_stalls"]
    )
    # The undersized darkness buffer must have overflowed into the DLQ:
    # bounded memory under chaos is part of what is being measured.
    assert fabric["accounting"]["dead_lettered"] > 0
    assert fabric["accounting"]["shed"] > 0

    recovery = _measure_recovery()
    assert recovery["reports"] > 0
    assert recovery["recoveries"] > 0

    def merge(data):
        data["fabric"] = fabric
        data["recovery"] = recovery

    data = write_bench_artifact("resilience", SCHEMA, merge, REPO_ROOT)
    print()
    print(json.dumps(data, indent=2, sort_keys=True))

    assert (REPO_ROOT / "BENCH_resilience.json").exists()
    assert (REPO_ROOT / "results" / "BENCH_resilience.json").exists()
