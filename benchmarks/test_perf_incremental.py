"""Speedup benchmark for incremental BGP re-convergence.

Converges the paper's research-Internet topology once, then replays a
sweep of single-link failure states through two engines — one with the
incremental path enabled, one forced to full recomputation — asserting
that the incremental engine (a) produces identical routing states,
(b) re-converges a strict subset of the prefixes, and (c) is faster in
wall clock on the sweep.

Run with the slow lane::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_incremental.py -m slow -s
"""

from __future__ import annotations

import time

import pytest

from repro.netsim.bgp import BgpEngine
from repro.netsim.gen.internet import research_internet
from repro.netsim.topology import NetworkState

TOPO_SEED = 100
N_SENSORS = 10
N_FAILURES = 40
REQUIRED_SPEEDUP = 1.3


def failure_states(net, n):
    """The first ``n`` single-inter-link-failure states, in link order."""
    nominal = NetworkState.nominal()
    return [
        nominal.with_failed_links([link.lid])
        for link in net.inter_links()[:n]
    ]


def sweep(engine, states):
    """Converge nominal (the baseline) plus every failure state, timed."""
    started = time.perf_counter()
    engine.converge(NetworkState.nominal())
    routings = [engine.converge(state) for state in states]
    return time.perf_counter() - started, routings


@pytest.mark.slow
def test_incremental_reconverges_strict_subset_and_is_faster():
    topo = research_internet(seed=TOPO_SEED)
    sensors = topo.stub_asns[:N_SENSORS]
    states = failure_states(topo.net, N_FAILURES)

    incremental = BgpEngine.for_sensor_ases(topo.net, sensors)
    full = BgpEngine.for_sensor_ases(topo.net, sensors, incremental=False)

    full_seconds, full_routings = sweep(full, states)
    incr_seconds, incr_routings = sweep(incremental, states)

    # Correctness first: the incremental results must be identical.
    for incr, reference in zip(incr_routings, full_routings):
        assert incr.equivalent_to(reference)

    # Every failure state went through the incremental path...
    assert incremental.counters.incremental_converges == len(states)
    # ...and re-converged a strict subset of the prefixes: the reuse is
    # what the speedup is made of.
    assert (
        incremental.counters.prefixes_converged
        < full.counters.prefixes_converged
    )
    assert incremental.counters.prefixes_reused > 0
    n_prefixes = len(incremental.prefixes)
    reuse = incremental.counters.prefixes_reused / (len(states) * n_prefixes)

    speedup = full_seconds / incr_seconds
    print(
        f"\n(22, 140) sweep, {len(states)} failure states, "
        f"{n_prefixes} prefixes: full {full_seconds:.2f}s, "
        f"incremental {incr_seconds:.2f}s -> {speedup:.2f}x "
        f"(prefix reuse {reuse:.0%})"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"expected >= {REQUIRED_SPEEDUP}x from incremental re-convergence, "
        f"measured {speedup:.2f}x"
    )
