"""Benchmark regenerating Figure 7: Tomo vs ND-edge sensitivity."""

from repro.experiments.figures import fig7_ndedge

from conftest import run_once


def test_fig07_ndedge(benchmark, bench_config, record_figure):
    result = run_once(benchmark, lambda: fig7_ndedge.run(bench_config))
    record_figure(result)
    s = result.summaries
    for kind in fig7_ndedge.KINDS:
        # ND-edge sensitivity ~1; Tomo clearly below.
        assert s[f"nd-edge/{kind}"]["mean"] >= 0.85
        assert s[f"nd-edge/{kind}"]["mean"] >= s[f"tomo/{kind}"]["mean"] + 0.2
