"""Performance-at-scale bench: diagnoses/sec and peak RSS vs topology size.

§5.3 speculates about Internet-scale behaviour; this bench makes the
cost side of that story measurable.  It runs the full measure-and-
diagnose pipeline on the paper's 165-AS research topology and on
power-law internets (:mod:`repro.netsim.gen.powerlaw`) at 1k and 5k
ASes — plus a 20k tier under ``-m slow`` — recording per-tier diagnosis
throughput and peak RSS into ``results/BENCH_scale.json`` (the slow tier
merges into the same file).

At the 5k tier it also times the greedy hitting-set solver both ways on
one large snapshot and asserts the vectorized path is at least
:data:`SPEEDUP_FLOOR` times faster than the set-based reference while
returning a bit-identical result.
"""

import json
import random
import time

import pytest

from repro.core.bitsets import numpy_available
from repro.core.diagnoser import NetDiagnoser
from repro.core.hitting_set import (
    _greedy_hitting_set_numpy,
    _greedy_hitting_set_python,
)
from repro.core.nd_edge import build_edge_inputs
from repro.experiments.runner import make_session
from repro.measurement.collector import take_snapshot
from repro.measurement.sensors import random_stub_placement
from repro.netsim.gen.internet import research_internet
from repro.netsim.gen.powerlaw import powerlaw_internet
from repro.perf import peak_rss_mb, write_bench_artifact

from conftest import REPO_ROOT, RESULTS_DIR

SCHEMA = "bench-scale-v1"
BENCH_PATH = RESULTS_DIR / "BENCH_scale.json"

#: Acceptance floor for the vectorized greedy at the 5k-AS tier.  The
#: measured margin is ~2x above this; the floor absorbs machine noise.
SPEEDUP_FLOOR = 3.0


def _hubs_by_degree(topo):
    """Tier-2 ASes, busiest (most inter-AS links) first, ASN tie-break."""
    net = topo.net
    return sorted(
        topo.tier2_asns, key=lambda asn: (-len(net.inter_links_of_as(asn)), asn)
    )


def _failure_lids(topo, session, index):
    """Deterministic failure scenario ``index`` for one tier.

    Cutting every uplink of one sensor's stub AS guarantees unreachable
    pairs (the diagnoser refuses all-reachable snapshots); cutting two
    links of a busy tier-2 hub adds rerouted pairs, so both evidence
    kinds are exercised.
    """
    net = topo.net
    sensor = session.sensors[index % len(session.sensors)]
    stub_asn = net.asn_of_router(sensor.router_id)
    lids = [link.lid for link in net.inter_links_of_as(stub_asn)]
    hubs = _hubs_by_degree(topo)
    hub = hubs[index % len(hubs)]
    lids += [link.lid for link in net.inter_links_of_as(hub)[:2]]
    return list(dict.fromkeys(lids))


def _measure_tier(label, build, n_sensors, n_diagnoses):
    """Build one tier, run ``n_diagnoses`` full pipeline rounds, record."""
    started = time.perf_counter()
    topo = build()
    build_seconds = time.perf_counter() - started
    rng = random.Random(f"perf-scale/{label}")
    session = make_session(
        topo, random_stub_placement(topo, n_sensors, rng), rng
    )
    diagnoser = NetDiagnoser("nd-edge")
    diagnosis_seconds = 0.0
    for index in range(n_diagnoses):
        after = session.base_state.with_failed_links(
            _failure_lids(topo, session, index)
        )
        started = time.perf_counter()
        snapshot = take_snapshot(
            session.sim, session.sensors, session.base_state, after
        )
        result = diagnoser.diagnose(snapshot)
        diagnosis_seconds += time.perf_counter() - started
        assert result.hypothesis, f"degenerate diagnosis at tier {label}"
    row = {
        "label": label,
        "n_ases": topo.net.num_ases,
        "n_routers": topo.net.num_routers,
        "n_links": topo.net.num_links,
        "n_sensors": n_sensors,
        "build_seconds": round(build_seconds, 4),
        "diagnoses": n_diagnoses,
        "diagnoses_per_second": round(n_diagnoses / diagnosis_seconds, 4),
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }
    return topo, session, row


def _measure_greedy_speedup(topo, session, reps=20):
    """Time both greedy implementations on one large 5k-tier snapshot."""
    net = topo.net
    hub = _hubs_by_degree(topo)[0]
    failed = [link.lid for link in net.inter_links_of_as(hub)[:4]]
    after = session.base_state.with_failed_links(failed)
    snapshot = take_snapshot(
        session.sim, session.sensors, session.base_state, after
    )
    inputs = build_edge_inputs(snapshot)
    failures = list(inputs.failure_sets.values())
    reroutes = list(inputs.reroute_map.values())
    kwargs = dict(excluded=inputs.excluded(), cluster_of=inputs.cluster_of)

    reference = _greedy_hitting_set_python(failures, reroutes, **kwargs)
    vectorized = _greedy_hitting_set_numpy(failures, reroutes, **kwargs)
    assert vectorized == reference, "vectorized greedy is not bit-identical"

    started = time.perf_counter()
    for _ in range(reps):
        _greedy_hitting_set_python(failures, reroutes, **kwargs)
    python_ms = (time.perf_counter() - started) / reps * 1000.0
    started = time.perf_counter()
    for _ in range(reps):
        _greedy_hitting_set_numpy(failures, reroutes, **kwargs)
    numpy_ms = (time.perf_counter() - started) / reps * 1000.0
    return {
        "failure_sets": len(failures),
        "reroute_sets": len(reroutes),
        "reps": reps,
        "python_ms": round(python_ms, 3),
        "numpy_ms": round(numpy_ms, 3),
        "speedup": round(python_ms / numpy_ms, 2),
    }


def _merge_results(tiers, greedy=None):
    """Merge new tiers into ``BENCH_scale.json`` at the repo root and
    under ``results/``, so tiers measured by different test runs (the
    slow 20k tier in particular) accumulate."""

    def merge(data):
        data.setdefault("tiers", {})
        for row in tiers:
            data["tiers"][row["label"]] = row
        if greedy is not None:
            data["greedy_5k"] = greedy

    return write_bench_artifact("scale", SCHEMA, merge, REPO_ROOT)


def test_perf_scale(benchmark):
    def run():
        tiers = []
        for label, build, n_sensors, n_diagnoses in (
            (
                "research-165",
                lambda: research_internet(n_tier2=22, n_stub=140, seed=0),
                10,
                3,
            ),
            ("powerlaw-1000", lambda: powerlaw_internet(1000, seed=0), 12, 2),
            ("powerlaw-5000", lambda: powerlaw_internet(5000, seed=0), 64, 1),
        ):
            topo, session, row = _measure_tier(
                label, build, n_sensors, n_diagnoses
            )
            tiers.append(row)
        greedy = (
            _measure_greedy_speedup(topo, session)
            if numpy_available()
            else None
        )
        return _merge_results(tiers, greedy)

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(json.dumps(data, indent=2, sort_keys=True))

    assert data["schema"] == SCHEMA
    assert len(data["tiers"]) >= 3
    sized = sorted(data["tiers"].values(), key=lambda row: row["n_ases"])
    assert [row["n_ases"] for row in sized][:2] == [165, 1000]
    assert sized[-1]["n_ases"] >= 5000
    for row in sized:
        assert row["diagnoses_per_second"] > 0
        assert row["peak_rss_mb"] > 0
    if numpy_available():
        assert data["greedy_5k"]["speedup"] >= SPEEDUP_FLOOR


@pytest.mark.slow
def test_perf_scale_20k(benchmark):
    """Internet-scale tier: merged into BENCH_scale.json, run explicitly
    with ``pytest benchmarks/test_perf_scale.py -m slow``."""

    def run():
        _topo, _session, row = _measure_tier(
            "powerlaw-20000", lambda: powerlaw_internet(20000, seed=0), 16, 1
        )
        return _merge_results([row])

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    row = data["tiers"]["powerlaw-20000"]
    assert row["n_ases"] == 20000
    assert row["diagnoses_per_second"] > 0
