"""Benchmark regenerating Figure 6: Tomo sensitivity CDFs per scenario."""

from repro.experiments.figures import fig6_tomo

from conftest import run_once


def test_fig06_tomo(benchmark, bench_config, record_figure):
    result = run_once(benchmark, lambda: fig6_tomo.run(bench_config))
    record_figure(result)
    s = result.summaries
    # Single link failures: sensitivity ~1 almost everywhere.
    assert s["link-1"]["frac_one"] >= 0.7
    # Multiple link failures: much lower sensitivity.
    assert s["link-3"]["mean"] <= s["link-1"]["mean"] - 0.2
    assert s["link-2"]["mean"] <= s["link-1"]["mean"]
    # Misconfigurations: sensitivity zero in the vast majority of runs.
    assert s["misconfig"]["frac_zero"] >= 0.8
    assert s["misconfig+link"]["mean"] <= 0.6
