"""Sharded-engine scale benchmark: events/sec, latency, shed at overload.

The tentpole question of the sharding work: what does the
:class:`~repro.stream.router.ShardedStreamEngine` sustain, and how does
it behave when tenants exceed their admission contracts?  This bench
replays a **seeded synthetic load** — millions of per-pair reachability
events with deterministic failure waves sweeping across destination
prefixes (and therefore across shards) — and records into
``BENCH_stream_scale.json`` (repo root + ``results/``):

* sustained ``events_per_second`` through route→admit→screen→window→
  detect→merge, per shard count;
* ``latency_ticks_p99``: how long episode transitions waited on the
  bounded queue (logical ticks);
* the **overload** run: per-tenant token buckets far below the offered
  load, completing with zero unhandled exceptions and a nonzero,
  fully-accounted shed count (``offered == admitted + shed``).

Reachability events carry no hops, so the bench measures the streaming
fabric itself, not diagnoser algebra (that is ``test_perf_stream.py``'s
job).  Scale knobs: ``REPRO_BENCH_SHARD_EVENTS`` (default 1_000_000)
and ``REPRO_BENCH_SHARDS`` (default 4).

Run directly (the shard-smoke CI lane does)::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_shards.py -q \
        --benchmark-disable
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments.stats import percentile, ratio
from repro.perf import peak_rss_mb, write_bench_artifact
from repro.stream import (
    ReachabilityEvent,
    ShardedStreamEngine,
    TenantConfig,
    source_tenant_of,
)

from conftest import REPO_ROOT

SCHEMA = "bench-stream-scale-v1"

N_EVENTS = int(os.environ.get("REPRO_BENCH_SHARD_EVENTS", "1000000"))
N_SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "4"))

#: Synthetic mesh shape: sources x destinations = pairs per tick.
N_SOURCES = 40
N_DESTS = 50
#: Failure waves: every WAVE_PERIOD ticks, WAVE_WIDTH destination
#: prefixes go dark for WAVE_TICKS ticks (seeded, deterministic).
WAVE_PERIOD = 12
WAVE_TICKS = 5
WAVE_WIDTH = 6


def _no_asn(_address: str):
    """Synthetic addresses have no AS mapping: prefix-keyed routing."""
    return None


def _pairs():
    """The synthetic sensor mesh, as (src, dst) address pairs.

    Destinations spread over ``N_DESTS`` distinct /24 prefixes, so the
    consistent-hash router spreads them over every shard and failure
    waves span shards — exercising the cross-shard merge path.
    """
    sources = [f"10.0.{i // 250}.{i % 250 + 1}" for i in range(N_SOURCES)]
    dests = [f"198.51.{i}.1" for i in range(N_DESTS)]
    return [(src, dst) for src in sources for dst in dests]


def _dst_failing(dst: str, tick: int) -> bool:
    """Deterministic failure waves over destination prefixes."""
    phase = tick % WAVE_PERIOD
    if phase >= WAVE_TICKS:
        return False
    wave = tick // WAVE_PERIOD
    prefix_index = int(dst.split(".")[2])
    return (prefix_index + wave) % (N_DESTS // WAVE_WIDTH) == 0


def _make_engine(shards: int, tenants=(), tenant_of=None) -> ShardedStreamEngine:
    return ShardedStreamEngine(
        asn_of=_no_asn,
        diagnosers={},
        shards=shards,
        window_width=4,
        open_after=2,
        close_after=2,
        max_pending=16,
        overflow_limit=1024,
        tenants=tenants,
        tenant_of=tenant_of,
    )


def _drive(engine: ShardedStreamEngine, n_events: int):
    """Stream ``n_events`` synthetic reachability events, tick by tick."""
    pairs = _pairs()
    per_tick = len(pairs)
    ticks = max(1, n_events // per_tick)
    seq = 0
    started = time.perf_counter()
    for tick in range(1, ticks + 1):
        for src, dst in pairs:
            engine.offer(
                ReachabilityEvent(
                    tick=tick,
                    seq=seq,
                    src=src,
                    dst=dst,
                    reached=not _dst_failing(dst, tick),
                )
            )
            seq += 1
        engine.advance(tick)
        engine.drain(tick)
    engine.advance(ticks + 1)
    engine.flush(ticks + 1)
    engine.close()
    wall = time.perf_counter() - started
    return seq, ticks, wall


def _measure_throughput(shards: int, n_events: int):
    engine = _make_engine(shards)
    events, ticks, wall = _drive(engine, n_events)
    counters = engine.counters()
    latencies = engine.latencies
    stats = engine.shard_stats()
    offered = [s["events_offered"] for s in stats]
    return engine, {
        "shards": shards,
        "events": events,
        "ticks": ticks,
        "wall_seconds": round(wall, 3),
        "events_per_second": round(ratio(events, wall), 1),
        "reports": counters["reports_emitted"],
        "episodes": counters["episodes_total"]
        if "episodes_total" in counters
        else engine.detector_counters()["episodes_total"],
        "cross_shard_episodes": counters["cross_shard_episodes"],
        "latency_ticks_p50": percentile(latencies, 0.50),
        "latency_ticks_p99": percentile(latencies, 0.99),
        "shard_events_min": min(offered),
        "shard_events_max": max(offered),
        "peak_rss_mb": round(peak_rss_mb(), 1),
    }


def _measure_overload(shards: int, n_events: int):
    """Offer far more than the tenants' admission contracts allow."""
    pairs_per_tick = N_SOURCES * N_DESTS
    # Four tenants, each granted ~1/16 of the offered per-tick load:
    # the controller must shed the rest, deterministically and counted.
    tenants = tuple(
        TenantConfig(f"tenant-{i}", rate=max(1, pairs_per_tick // 16))
        for i in range(4)
    )
    engine = _make_engine(shards, tenants=tenants, tenant_of=source_tenant_of(tenants))
    events, ticks, wall = _drive(engine, n_events)
    counters = engine.counters()
    shed = counters["admission_shed"]
    admitted = counters["admission_admitted"]
    unknown = counters["admission_rejected_unknown"]
    # Every offered pair event is accounted exactly once: admitted or
    # shed (no unknowns — every source maps to a registered tenant).
    pair_events = counters["events_offered"] - counters["events_broadcast"]
    assert unknown == 0
    assert shed > 0, "an overload run that sheds nothing measured nothing"
    assert admitted + shed == pair_events, (
        f"unaccounted events: {pair_events} offered != "
        f"{admitted} admitted + {shed} shed"
    )
    return {
        "shards": shards,
        "events": events,
        "ticks": ticks,
        "wall_seconds": round(wall, 3),
        "events_per_second": round(ratio(events, wall), 1),
        "tenants": len(tenants),
        "admitted": admitted,
        "shed": shed,
        "shed_rate": round(ratio(shed, pair_events), 4),
        "reports": counters["reports_emitted"],
    }


def test_perf_shards():
    """Throughput + overload measurement, merged into the artifact."""
    engine, throughput = _measure_throughput(N_SHARDS, N_EVENTS)

    # The waves must actually produce episode work and span shards,
    # otherwise the throughput number measured an idle pipe.
    assert throughput["reports"] > 0
    assert throughput["cross_shard_episodes"] > 0
    assert throughput["events_per_second"] > 0
    # Bounded latency: the queue is drained every tick, so transitions
    # never wait more than the end-of-stream grace tick.
    assert throughput["latency_ticks_p99"] <= 1
    # The router must not have collapsed the mesh onto one shard.
    assert throughput["shard_events_min"] > 0

    overload = _measure_overload(N_SHARDS, max(N_EVENTS // 5, 20000))

    def merge(data):
        data.setdefault("throughput", {})[str(N_SHARDS)] = throughput
        data["overload"] = overload

    data = write_bench_artifact("stream_scale", SCHEMA, merge, REPO_ROOT)
    print()
    print(json.dumps(data, indent=2, sort_keys=True))

    assert (REPO_ROOT / "BENCH_stream_scale.json").exists()
    assert (REPO_ROOT / "results" / "BENCH_stream_scale.json").exists()


def test_perf_shards_serial_baseline():
    """One-shard throughput row for the scaling story in the artifact."""
    _engine, row = _measure_throughput(1, max(N_EVENTS // 10, 20000))
    assert row["reports"] > 0

    def merge(data):
        data.setdefault("throughput", {})["1"] = row

    write_bench_artifact("stream_scale", SCHEMA, merge, REPO_ROOT)
