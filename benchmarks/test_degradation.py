"""Benchmark the degradation-curve sweep: quality vs measurement fault rate."""

from repro.experiments.figures import degradation

from conftest import run_once


def test_degradation_curves(benchmark, bench_config, record_figure):
    result = run_once(benchmark, lambda: degradation.run(bench_config))
    record_figure(result)
    stats = result.runner_stats
    # The sweep injected real faults and every run still completed.
    assert stats.any_faults_seen()
    assert stats.records > 0
    for label in ("tomo", "nd-edge", "nd-bgpigp", "nd-lg"):
        sens = dict(result.series_by_name(f"{label}/sensitivity").points)
        # Clean measurements first: rate 0 is the undegraded baseline...
        assert sens[0.0] > 0.0
        # ...and heavy faults cannot *improve* on it.
        assert sens[0.5] <= sens[0.0]
