"""Benchmark regenerating Figure 10: ND-edge vs ND-bgpigp."""

from repro.experiments.figures import fig10_bgpigp

from conftest import run_once


def test_fig10_bgpigp(benchmark, bench_config, record_figure):
    result = run_once(benchmark, lambda: fig10_bgpigp.run(bench_config))
    record_figure(result)
    s = result.summaries
    # Same (near-one) sensitivity...
    assert abs(
        s["nd-bgpigp/sensitivity"]["mean"] - s["nd-edge/sensitivity"]["mean"]
    ) <= 0.1
    assert s["nd-bgpigp/sensitivity"]["mean"] >= 0.85
    # ...and control-plane data never hurts specificity.
    assert (
        s["nd-bgpigp/specificity"]["mean"]
        >= s["nd-edge/specificity"]["mean"] - 1e-9
    )
