"""Scaling bench: substrate cost and diagnosis quality vs topology size.

§5.3 speculates about Internet-scale behaviour; this bench records the
measured trend.  Specificity naturally rises with size (the universe
grows faster than hypothesis sets), while sensitivity must stay pinned.
"""

from repro.experiments.scaling import render_scaling, scaling_sweep

from conftest import run_once


def test_scaling_sweep(benchmark):
    points = run_once(
        benchmark,
        lambda: scaling_sweep(
            sizes=((6, 40), (12, 80), (22, 140)), failures=4, seed=0
        ),
    )
    print()
    print(render_scaling(points))
    assert [p.n_ases for p in points] == [49, 95, 165]
    # Sensitivity stays pinned as the topology grows.
    assert all(p.nd_edge_sensitivity >= 0.9 for p in points)
    # Specificity does not degrade with size (the universe outgrows H).
    assert points[-1].nd_edge_specificity >= points[0].nd_edge_specificity - 0.05
    # Control-plane data never hurts at any size.
    for p in points:
        assert p.bgpigp_specificity >= p.nd_edge_specificity - 1e-9
    # Substrate stays interactive at paper scale.
    assert points[-1].convergence_seconds < 5.0


def test_scaling_sweep_powerlaw(benchmark):
    """The same sweep on the internet-scale power-law tier (small sizes
    here; ``benchmarks/test_perf_scale.py`` covers the 5k/20k points)."""
    points = run_once(
        benchmark,
        lambda: scaling_sweep(
            sizes=(200, 400),
            n_sensors=8,
            failures=2,
            seed=0,
            topology="powerlaw",
        ),
    )
    print()
    print(render_scaling(points))
    assert [p.n_ases for p in points] == [200, 400]
    # Sensitivity stays pinned on the power-law tier too.
    assert all(p.nd_edge_sensitivity >= 0.9 for p in points)
    # Control-plane data never hurts at any size.
    for p in points:
        assert p.bgpigp_specificity >= p.nd_edge_specificity - 1e-9
