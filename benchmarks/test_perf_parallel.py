"""Speedup benchmark for the process-parallel experiment runner.

Times the paper's research-Internet batch — the (22, 140) topology,
random stub placements, single-link failures — serially and with 4
worker processes, asserts the outputs are identical, and (on hardware
with at least 4 cores) asserts a >= 1.8x wall-clock speedup.  On smaller
machines the measured ratio is still reported, but only the determinism
claim is enforced — a 1-core container cannot speed anything up.

Run with the slow lane::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_parallel.py -m slow -s
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.experiments.jobs import ResearchTopoFactory, StubPlacement
from repro.experiments.runner import RunnerStats, run_kind_batch

BATCH = dict(
    topo_factory=ResearchTopoFactory(topo_seed=100, n_tier2=22, n_stub=140),
    placement_fn=StubPlacement(10),
    kinds=("link-1",),
    diagnosers={"nd-edge": NetDiagnoser("nd-edge")},
    placements=4,
    failures_per_placement=4,
    seed=0,
)

WORKERS = 4
REQUIRED_SPEEDUP = 1.8


@pytest.mark.slow
def test_parallel_speedup_research_internet():
    started = time.perf_counter()
    serial = run_kind_batch(**BATCH, workers=1)
    serial_seconds = time.perf_counter() - started

    stats = RunnerStats()
    started = time.perf_counter()
    parallel = run_kind_batch(**BATCH, workers=WORKERS, stats=stats)
    parallel_seconds = time.perf_counter() - started

    # Determinism is non-negotiable regardless of core count.
    assert parallel == serial
    assert stats.workers == WORKERS

    speedup = serial_seconds / parallel_seconds
    cores = os.cpu_count() or 1
    print(
        f"\n(22, 140) batch, {BATCH['placements']} placements: "
        f"serial {serial_seconds:.2f}s, {WORKERS} workers "
        f"{parallel_seconds:.2f}s -> {speedup:.2f}x on {cores} core(s)"
    )
    if cores >= WORKERS:
        assert speedup >= REQUIRED_SPEEDUP, (
            f"expected >= {REQUIRED_SPEEDUP}x speedup at {WORKERS} workers "
            f"on {cores} cores, measured {speedup:.2f}x"
        )
    else:
        pytest.skip(
            f"speedup assertion needs >= {WORKERS} cores (found {cores}); "
            f"measured {speedup:.2f}x, determinism verified"
        )


@pytest.mark.slow
def test_parallel_stats_overhead_is_bounded():
    """RunnerStats accounting must not meaningfully slow the batch."""
    started = time.perf_counter()
    run_kind_batch(**BATCH, workers=1)
    bare_seconds = time.perf_counter() - started

    stats = RunnerStats()
    started = time.perf_counter()
    run_kind_batch(**BATCH, workers=1, stats=stats)
    stats_seconds = time.perf_counter() - started

    assert stats.placements == BATCH["placements"]
    assert stats.setup_seconds + stats.scenario_seconds <= stats_seconds * 1.05
    # Generous bound: accounting is a handful of counters per placement.
    assert stats_seconds <= bare_seconds * 1.5 + 0.5
