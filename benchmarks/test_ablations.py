"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation varies one mechanism and prints/asserts its effect:

* reroute weight b (a=1 fixed): reroute evidence drives multi-failure
  sensitivity;
* partial-trace exoneration (our extension): tightens hypotheses without
  losing the true link;
* greedy vs exact hitting set: the log-factor approximation is nearly
  optimal on real instances;
* misconfiguration granularity: per-neighbour filters are diagnosable,
  per-prefix filters sit below logical-link resolution (the paper's own
  §3.1 caveat);
* AS-X position (core vs stub): core placement sees more withdrawals.
"""

import random

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.core.hitting_set import exact_hitting_set
from repro.core.nd_edge import build_edge_inputs
from repro.experiments.figures import fig10_bgpigp
from repro.experiments.figures.base import FigureConfig
from repro.experiments.runner import make_session, run_scenario
from repro.measurement.collector import take_snapshot
from repro.measurement.sensors import random_stub_placement
from repro.netsim.gen.internet import research_internet

from conftest import run_once


@pytest.fixture(scope="module")
def session():
    topo = research_internet(seed=42)
    rng = random.Random("ablate")
    return make_session(topo, random_stub_placement(topo, 10, rng), rng)


@pytest.fixture(scope="module")
def link3_snapshots(session):
    snaps = []
    for _ in range(6):
        scenario = session.sampler.sample("link-3")
        snaps.append(
            (
                scenario,
                take_snapshot(
                    session.sim,
                    session.sensors,
                    session.base_state,
                    scenario.after_state,
                ),
            )
        )
    return snaps


def _mean_sensitivity(session, snaps, diagnoser):
    from repro.core.metrics import sensitivity
    from repro.experiments.runner import ground_truth_links

    values = []
    for scenario, snap in snaps:
        truth = ground_truth_links(session.net, scenario.event)
        result = diagnoser.diagnose(snap)
        values.append(
            sensitivity(truth, result.physical_hypothesis())
            if truth
            else 1.0
        )
    return sum(values) / len(values)


def test_ablation_reroute_weight(benchmark, session, link3_snapshots):
    def sweep():
        return {
            b: _mean_sensitivity(
                session,
                link3_snapshots,
                NetDiagnoser("nd-edge", reroute_weight=b),
            )
            for b in (0, 1, 3)
        }

    sens = run_once(benchmark, sweep)
    print(f"\nreroute-weight ablation (3 link failures): {sens}")
    # b=1 (the paper's choice) must not be worse than ignoring reroutes.
    assert sens[1] >= sens[0] - 1e-9


def test_ablation_partial_traces(benchmark, session, link3_snapshots):
    def sweep():
        plain, partial = [], []
        for _scenario, snap in link3_snapshots:
            plain.append(
                len(NetDiagnoser("nd-edge").diagnose(snap).hypothesis)
            )
            partial.append(
                len(
                    NetDiagnoser("nd-edge", use_partial_traces=True)
                    .diagnose(snap)
                    .hypothesis
                )
            )
        return sum(plain) / len(plain), sum(partial) / len(partial)

    plain, partial = run_once(benchmark, sweep)
    print(f"\npartial-trace ablation: |H| plain={plain:.1f} partial={partial:.1f}")
    assert partial <= plain + 1e-9
    # Sensitivity is preserved by the extension.
    assert _mean_sensitivity(
        session, link3_snapshots, NetDiagnoser("nd-edge", use_partial_traces=True)
    ) >= _mean_sensitivity(
        session, link3_snapshots, NetDiagnoser("nd-edge")
    ) - 1e-9


def test_ablation_greedy_vs_exact(benchmark, session, link3_snapshots):
    def compare():
        gaps = []
        for _scenario, snap in link3_snapshots:
            inputs = build_edge_inputs(snap)
            greedy = NetDiagnoser("nd-edge").diagnose(snap)
            exact = exact_hitting_set(
                list(inputs.failure_sets.values()),
                excluded=inputs.excluded(),
            )
            if exact is not None:
                gaps.append(len(greedy.hypothesis) - len(exact))
        return gaps

    gaps = run_once(benchmark, compare)
    print(f"\ngreedy-vs-exact ablation: size gaps {gaps}")
    assert gaps, "exact solver should finish on these instances"
    # Greedy (with all-ties inclusion) is never smaller than the optimum,
    # and the overshoot stays bounded.
    assert all(gap >= 0 for gap in gaps)


def test_ablation_misconfig_granularity(benchmark, session):
    def sweep():
        out = {}
        for granularity in ("neighbor", "prefix"):
            values = []
            for _ in range(6):
                scenario = session.sampler.sample_misconfiguration(
                    granularity=granularity
                )
                record = run_scenario(
                    session, scenario, {"nd": NetDiagnoser("nd-edge")}
                )
                values.append(record.scores["nd"].link.sensitivity)
            out[granularity] = sum(values) / len(values)
        return out

    sens = run_once(benchmark, sweep)
    print(f"\nmisconfig-granularity ablation: {sens}")
    # Per-neighbour misconfigs are what logical links are built for.
    assert sens["neighbor"] >= 0.9
    # Per-prefix filters sit below logical-link resolution (§3.1 caveat).
    assert sens["prefix"] <= sens["neighbor"]


def test_ablation_asx_position(benchmark, bench_config, record_figure):
    small = FigureConfig(
        seed=bench_config.seed,
        topo_seed=bench_config.topo_seed,
        placements=max(1, bench_config.placements - 1),
        failures_per_placement=bench_config.failures_per_placement,
        n_sensors=bench_config.n_sensors,
    )

    def sweep():
        return {
            position: fig10_bgpigp.run(small, asx_position=position)
            for position in ("core", "stub")
        }

    results = run_once(benchmark, sweep)
    core = results["core"].summaries["nd-bgpigp/specificity"]["mean"]
    stub = results["stub"].summaries["nd-bgpigp/specificity"]["mean"]
    print(f"\nAS-X position ablation: specificity core={core:.3f} stub={stub:.3f}")
    # §5.3: sensitivity does not depend on AS-X's position.
    assert results["core"].summaries["nd-bgpigp/sensitivity"]["mean"] == (
        pytest.approx(
            results["stub"].summaries["nd-bgpigp/sensitivity"]["mean"], abs=0.15
        )
    )


def test_ablation_router_failures(benchmark, session):
    """§5.2: ND-edge detects every failed router (>= 1 of its links in H),
    and link-level metrics resemble the 3-link-failure case."""

    def sweep():
        from repro.experiments.runner import ground_truth_links

        detections, sens = [], []
        for _ in range(6):
            scenario = session.sampler.sample("router")
            snap = take_snapshot(
                session.sim,
                session.sensors,
                session.base_state,
                scenario.after_state,
            )
            truth = ground_truth_links(session.net, scenario.event)
            result = NetDiagnoser("nd-edge").diagnose(snap)
            hypothesis = result.physical_hypothesis()
            detections.append(bool(truth & hypothesis))
            probed_truth = truth & result.physical_universe()
            if probed_truth:
                sens.append(len(probed_truth & hypothesis) / len(probed_truth))
        return detections, sens

    detections, sens = run_once(benchmark, sweep)
    rate = sum(detections) / len(detections)
    print(f"\nrouter-failure ablation: detection rate {rate:.2f}, "
          f"probed-link sensitivity {sum(sens) / len(sens):.2f}")
    assert rate == 1.0  # "in each simulation run" (§5.2)


def test_ablation_as_level_nd_edge(benchmark, session):
    """§5.2: in > 90 % of runs ND-edge has no AS-false negatives."""

    def sweep():
        values = []
        for _ in range(8):
            scenario = session.sampler.sample("link-1")
            record = run_scenario(
                session, scenario, {"nd": NetDiagnoser("nd-edge")}
            )
            values.append(record.scores["nd"].as_level.sensitivity)
        return values

    values = run_once(benchmark, sweep)
    perfect = sum(1 for v in values if v == 1.0) / len(values)
    print(f"\nAS-level ablation: fraction with no AS-false-negatives "
          f"{perfect:.2f}")
    assert perfect >= 0.75


def test_ablation_measurement_skew(benchmark, session):
    """§6 clock-skew hazard quantified: sensitivity vs stale-sensor
    fraction, and the remeasure mitigation."""
    import random as _random

    from repro.core.metrics import sensitivity
    from repro.experiments.runner import ground_truth_links
    from repro.measurement.skew import (
        pick_stale_sensors,
        remeasure,
        take_skewed_snapshot,
    )

    def sweep():
        rng = _random.Random("skew-bench")
        curve = {}
        scenarios = [session.sampler.sample("link-1") for _ in range(5)]
        for fraction in (0.0, 0.3, 0.6):
            values = []
            for scenario in scenarios:
                stale = pick_stale_sensors(session.sensors, fraction, rng)
                snap = take_skewed_snapshot(
                    session.sim,
                    session.sensors,
                    session.base_state,
                    scenario.after_state,
                    stale,
                )
                if not snap.any_failure():
                    values.append(0.0)  # fully blinded by skew
                    continue
                truth = ground_truth_links(session.net, scenario.event)
                result = NetDiagnoser("nd-edge").diagnose(snap)
                values.append(sensitivity(truth, result.physical_hypothesis()))
            curve[fraction] = sum(values) / len(values)
        # Mitigation: a clean follow-up round restores full sensitivity.
        repaired = []
        for scenario in scenarios:
            snap = remeasure(
                session.sim,
                session.sensors,
                session.base_state,
                scenario.after_state,
            )
            truth = ground_truth_links(session.net, scenario.event)
            result = NetDiagnoser("nd-edge").diagnose(snap)
            repaired.append(sensitivity(truth, result.physical_hypothesis()))
        return curve, sum(repaired) / len(repaired)

    curve, repaired = run_once(benchmark, sweep)
    print(f"\nmeasurement-skew ablation: sensitivity by stale fraction "
          f"{curve}, after remeasure {repaired:.2f}")
    assert curve[0.0] >= curve[0.6] - 1e-9  # skew never helps
    assert repaired >= curve[0.6]           # the §6 mitigation works
    assert repaired >= 0.9


def test_ablation_multipath_vs_singlepath(benchmark):
    """Footnote 2 quantified: under ECMP load balancing, single-path
    ND-edge sees phantom reroutes that multipath-aware diagnosis avoids."""
    import random as _random

    from repro.core.multipath import nd_edge_multipath
    from repro.core.pathset import EPOCH_POST
    from repro.measurement.paris import paris_mesh

    def sweep():
        # The dedicated ECMP world from the integration tests, scaled up a
        # touch: one transit AS with a diamond, two stubs.
        from repro.measurement.sensors import deploy_sensors
        from repro.netsim.builders import TopologyBuilder
        from repro.netsim.events import LinkFailureEvent
        from repro.netsim.simulator import Simulator
        from repro.netsim.topology import NetworkState, Tier

        b = TopologyBuilder()
        b.autonomous_system("S", Tier.STUB, routers=1)
        b.autonomous_system("T", Tier.TIER2, routers=4)
        b.autonomous_system("D", Tier.STUB, routers=1)
        b.customer_of("S", "T")
        b.customer_of("D", "T")
        for pair in (("t1", "t2"), ("t1", "t3"), ("t2", "t4"), ("t3", "t4")):
            b.link(*pair)
        b.link("s1", "t1")
        b.link("t4", "d1")
        sensors = deploy_sensors(b.net, [b.router("s1").rid, b.router("d1").rid])
        sim = Simulator(b.net, [b.asn("S"), b.asn("D")])
        lid = b.net.link_between(b.router("t1").rid, b.router("t2").rid).lid
        after_state = sim.apply(LinkFailureEvent((lid,)))
        before = paris_mesh(sim, sensors, NetworkState.nominal())
        after = paris_mesh(sim, sensors, after_state, epoch=EPOCH_POST)
        result = nd_edge_multipath(before, after, sim.mapper.asn_of)
        return b, result

    b, result = run_once(benchmark, sweep)
    from repro.core.linkspace import physical_link

    truth = physical_link(b.router("t1").address, b.router("t2").address)
    print(f"\nmultipath ablation: reroute sets {result.details['reroute_sets']}, "
          f"failure sets {result.details['failure_sets']}, "
          f"truth found {truth in result.physical_hypothesis()}")
    assert result.details["failure_sets"] == 0  # nothing became unreachable
    assert truth in result.physical_hypothesis()


def test_ablation_path_diversity(benchmark):
    """§4's claim measured: "path diversity only determines the number of
    failure instances that lead to unreachabilities.  It does not
    influence the performance of our algorithms"."""
    import random as _random

    from repro.experiments.runner import make_session
    from repro.measurement.sensors import random_stub_placement
    from repro.netsim.gen.internet import research_internet

    def sweep():
        out = {}
        for style in ("hubspoke", "ladder"):
            topo = research_internet(seed=42, tier2_style=style)
            rng = _random.Random("diversity")
            sess = make_session(topo, random_stub_placement(topo, 10, rng), rng)
            # How hard is it to *cause* unreachability?  Count admission
            # attempts across a fixed number of admitted scenarios.
            sens = []
            broken_fraction = []
            probed = sess.sampler.probed_links
            checked = 0
            broken = 0
            for lid in probed[:40]:
                from repro.netsim.events import LinkFailureEvent

                state = sess.sim.apply(LinkFailureEvent((lid,)))
                checked += 1
                if sess.sampler._mesh_broken(state):
                    broken += 1
            broken_fraction = broken / checked
            for _ in range(6):
                scenario = sess.sampler.sample("link-1")
                record = run_scenario(
                    sess, scenario, {"nd": NetDiagnoser("nd-edge")}
                )
                sens.append(record.scores["nd"].link.sensitivity)
            out[style] = (broken_fraction, sum(sens) / len(sens))
        return out

    out = run_once(benchmark, sweep)
    print(f"\npath-diversity ablation (P[unreachability], nd-edge sens): {out}")
    hub_frac, hub_sens = out["hubspoke"]
    ladder_frac, ladder_sens = out["ladder"]
    # More internal redundancy -> fewer failures cause unreachability...
    assert ladder_frac <= hub_frac
    # ...but once invoked, the algorithm performs the same (the §4 claim).
    assert abs(hub_sens - ladder_sens) <= 0.15


def test_ablation_te_weight_changes(benchmark, session):
    """Beyond the paper: IGP traffic-engineering changes concurrent with a
    failure plant innocent reroute evidence.  Sensitivity must hold and
    the false-positive overhead must stay bounded."""
    import random as _random

    from repro.core.metrics import sensitivity
    from repro.experiments.runner import ground_truth_links
    from repro.netsim.events import CompositeEvent, WeightChangeEvent

    def sweep():
        rng = _random.Random("te-bench")
        sens, extra_fp = [], []
        intra = session.sampler.probed_intra_links
        for _ in range(5):
            scenario = session.sampler.sample("link-1")
            te_links = [
                lid
                for lid in intra
                if lid not in scenario.event.link_ids
            ]
            if not te_links:
                continue
            te = WeightChangeEvent(rng.choice(te_links), 50)
            combined = CompositeEvent((te, scenario.event))
            after = session.sim.apply(combined)
            snap = take_snapshot(
                session.sim, session.sensors, session.base_state, after
            )
            if not snap.any_failure():
                continue
            truth = ground_truth_links(session.net, scenario.event)
            noisy = NetDiagnoser("nd-edge").diagnose(snap)
            clean_snap = take_snapshot(
                session.sim,
                session.sensors,
                session.base_state,
                scenario.after_state,
            )
            clean = NetDiagnoser("nd-edge").diagnose(clean_snap)
            sens.append(sensitivity(truth, noisy.physical_hypothesis()))
            extra_fp.append(
                len(noisy.physical_hypothesis())
                - len(clean.physical_hypothesis())
            )
        return sens, extra_fp

    sens, extra_fp = run_once(benchmark, sweep)
    mean_sens = sum(sens) / len(sens)
    mean_extra = sum(extra_fp) / len(extra_fp)
    print(f"\nTE-robustness ablation: sensitivity {mean_sens:.2f}, "
          f"extra false positives {mean_extra:+.1f}")
    assert mean_sens >= 0.9
    assert mean_extra <= 4.0


def test_ablation_sensor_count(benchmark):
    """§4: "experiments with N ranging from 5 to 100 show similar trends"
    — ND-edge sensitivity must be flat in the overlay size; specificity
    may only improve as more probes shrink the confusable classes."""
    import random as _random

    from repro.experiments.runner import make_session
    from repro.measurement.sensors import random_stub_placement
    from repro.netsim.gen.internet import research_internet

    def sweep():
        out = {}
        for n_sensors in (5, 10, 20, 40):
            topo = research_internet(seed=42)
            rng = _random.Random(f"n-sweep/{n_sensors}")
            sess = make_session(
                topo, random_stub_placement(topo, n_sensors, rng), rng
            )
            sens, spec = [], []
            for _ in range(5):
                scenario = sess.sampler.sample("link-1")
                record = run_scenario(
                    sess, scenario, {"nd": NetDiagnoser("nd-edge")}
                )
                sens.append(record.scores["nd"].link.sensitivity)
                spec.append(record.scores["nd"].link.specificity)
            out[n_sensors] = (sum(sens) / len(sens), sum(spec) / len(spec))
        return out

    out = run_once(benchmark, sweep)
    print(f"\nsensor-count ablation (sens, spec): {out}")
    for n_sensors, (sens, _spec) in out.items():
        assert sens >= 0.9, f"sensitivity sagged at N={n_sensors}"
