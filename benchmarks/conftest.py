"""Shared benchmark configuration.

Every figure bench regenerates its paper figure at a reduced but
meaningful scale (the paper uses 10 placements x 100 failures; benches
default to 2 x 8 so the whole suite finishes in minutes), renders the
series to ``results/`` and asserts the figure's qualitative claims.

Scale can be raised via environment variables, and the placement batches
can be fanned out over worker processes (results are identical)::

    REPRO_BENCH_PLACEMENTS=10 REPRO_BENCH_FAILURES=100 \
    REPRO_BENCH_WORKERS=0 \
        pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.figures.base import FigureConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "results"


@pytest.fixture(scope="session")
def bench_config() -> FigureConfig:
    return FigureConfig(
        seed=0,
        topo_seed=100,
        placements=int(os.environ.get("REPRO_BENCH_PLACEMENTS", "2")),
        failures_per_placement=int(os.environ.get("REPRO_BENCH_FAILURES", "8")),
        n_sensors=int(os.environ.get("REPRO_BENCH_SENSORS", "10")),
        workers=int(os.environ.get("REPRO_BENCH_WORKERS", "1")),
    )


@pytest.fixture(scope="session")
def record_figure():
    """Write a figure's rendering under results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(result) -> None:
        text = result.render()
        (RESULTS_DIR / f"{result.figure_id}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record


def run_once(benchmark, fn):
    """Run an expensive figure harness exactly once under the benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
