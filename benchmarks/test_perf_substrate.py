"""Micro-benchmarks of the substrate: convergence, probing, diagnosis.

These are classic pytest-benchmark timings (multiple rounds) quantifying
the costs the figure harnesses are built on; useful for catching
performance regressions in the engine or the greedy solver.
"""

import random

import pytest

from repro.core.diagnoser import NetDiagnoser
from repro.experiments.runner import make_session
from repro.measurement.collector import take_snapshot
from repro.measurement.probing import probe_mesh
from repro.measurement.sensors import random_stub_placement
from repro.netsim.bgp import BgpEngine
from repro.netsim.gen.internet import research_internet
from repro.netsim.topology import NetworkState


@pytest.fixture(scope="module")
def world():
    topo = research_internet(seed=42)
    rng = random.Random("perf")
    session = make_session(topo, random_stub_placement(topo, 10, rng), rng)
    scenario = session.sampler.sample("link-2")
    snapshot = take_snapshot(
        session.sim, session.sensors, session.base_state, scenario.after_state
    )
    return topo, session, scenario, snapshot


def test_perf_bgp_convergence(benchmark, world):
    topo, session, _scenario, _snapshot = world
    sensor_asns = sorted(
        topo.net.asn_of_router(s.router_id) for s in session.sensors
    )

    def converge():
        engine = BgpEngine.for_sensor_ases(topo.net, sensor_asns)
        return engine.converge(NetworkState.nominal())

    routing = benchmark(converge)
    assert routing.prefixes


def test_perf_probe_mesh(benchmark, world):
    _topo, session, scenario, _snapshot = world

    def mesh():
        # Fresh simulator state would re-trace; the cache is the point of
        # the facade, so bypass it for a true data-plane timing.
        session.sim._trace_cache.clear()
        return probe_mesh(session.sim, session.sensors, scenario.after_state)

    store = benchmark(mesh)
    assert len(store) == 90


def test_perf_tomo(benchmark, world):
    _topo, _session, _scenario, snapshot = world
    result = benchmark(lambda: NetDiagnoser("tomo").diagnose(snapshot))
    assert result.hypothesis


def test_perf_nd_edge(benchmark, world):
    _topo, _session, _scenario, snapshot = world
    result = benchmark(lambda: NetDiagnoser("nd-edge").diagnose(snapshot))
    assert result.hypothesis


def test_perf_topology_generation(benchmark):
    topo = benchmark(lambda: research_internet(seed=7))
    assert topo.net.num_ases == 165
